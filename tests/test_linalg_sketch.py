"""Tests for CountSketch and TensorSketch operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.linalg.sketch import CountSketch, TensorSketch
from repro.tensor.products import kron_all


class TestCountSketch:
    def test_apply_matches_dense_operator(self, rng) -> None:
        cs = CountSketch(20, 8, rng=0)
        x = rng.standard_normal((20, 3))
        np.testing.assert_allclose(cs.apply(x), cs.to_dense() @ x)

    def test_vector_input(self, rng) -> None:
        cs = CountSketch(10, 4, rng=0)
        v = rng.standard_normal(10)
        assert cs.apply(v).shape == (4,)

    def test_linear(self, rng) -> None:
        cs = CountSketch(15, 6, rng=0)
        x, y = rng.standard_normal(15), rng.standard_normal(15)
        np.testing.assert_allclose(
            cs.apply(2 * x + y), 2 * cs.apply(x) + cs.apply(y), atol=1e-12
        )

    def test_one_nonzero_per_column(self) -> None:
        cs = CountSketch(30, 7, rng=1)
        dense = cs.to_dense()
        assert (np.count_nonzero(dense, axis=0) == 1).all()
        assert set(np.abs(dense[dense != 0])) == {1.0}

    def test_norm_unbiased(self) -> None:
        # E[||Sx||^2] = ||x||^2 over sketch randomness.
        x = np.random.default_rng(0).standard_normal(50)
        norms = [
            np.linalg.norm(CountSketch(50, 25, rng=s).apply(x)) ** 2
            for s in range(300)
        ]
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.15)

    def test_inner_product_preserved_on_average(self) -> None:
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal(40), rng.standard_normal(40)
        dots = [
            CountSketch(40, 30, rng=s).apply(x) @ CountSketch(40, 30, rng=s).apply(y)
            for s in range(300)
        ]
        assert np.mean(dots) == pytest.approx(x @ y, abs=0.3 * np.linalg.norm(x) * np.linalg.norm(y) / np.sqrt(30))

    def test_dim_mismatch(self, rng) -> None:
        with pytest.raises(ShapeError):
            CountSketch(10, 4, rng=0).apply(rng.standard_normal(11))

    def test_invalid_dims(self) -> None:
        with pytest.raises(ShapeError):
            CountSketch(0, 4)


class TestTensorSketch:
    def test_kron_identity_two_factors(self, rng) -> None:
        ts = TensorSketch((4, 5), 32, rng=0)
        a, b = rng.standard_normal((4, 2)), rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            ts.sketch_kron([a, b]), ts.apply(kron_all([a, b])), atol=1e-8
        )

    def test_kron_identity_three_factors(self, rng) -> None:
        ts = TensorSketch((3, 4, 2), 64, rng=1)
        mats = [
            rng.standard_normal((3, 2)),
            rng.standard_normal((4, 2)),
            rng.standard_normal((2, 2)),
        ]
        np.testing.assert_allclose(
            ts.sketch_kron(mats), ts.apply(kron_all(mats)), atol=1e-8
        )

    def test_kron_vectors(self, rng) -> None:
        ts = TensorSketch((6, 5), 40, rng=2)
        a, b = rng.standard_normal((6, 1)), rng.standard_normal((5, 1))
        np.testing.assert_allclose(
            ts.sketch_kron([a, b]).ravel(),
            ts.apply(np.kron(a.ravel(), b.ravel())),
            atol=1e-8,
        )

    def test_single_factor_reduces_to_countsketch(self, rng) -> None:
        ts = TensorSketch((12,), 8, rng=3)
        x = rng.standard_normal((12, 2))
        np.testing.assert_allclose(ts.sketch_kron([x]), ts.apply(x), atol=1e-8)

    def test_dim_in(self) -> None:
        assert TensorSketch((3, 4, 5), 16, rng=0).dim_in == 60

    def test_apply_dim_mismatch(self, rng) -> None:
        with pytest.raises(ShapeError):
            TensorSketch((3, 4), 16, rng=0).apply(rng.standard_normal(13))

    def test_sketch_kron_count_mismatch(self, rng) -> None:
        with pytest.raises(ShapeError):
            TensorSketch((3, 4), 16, rng=0).sketch_kron([rng.standard_normal((3, 1))])

    def test_sketch_kron_factor_shape_mismatch(self, rng) -> None:
        ts = TensorSketch((3, 4), 16, rng=0)
        with pytest.raises(ShapeError):
            ts.sketch_kron([rng.standard_normal((3, 1)), rng.standard_normal((5, 1))])

    def test_norm_roughly_preserved(self) -> None:
        # With m >> 1 the sketched norm concentrates around the true norm.
        rng = np.random.default_rng(4)
        x = rng.standard_normal(6 * 7)
        rel = [
            np.linalg.norm(TensorSketch((6, 7), 200, rng=s).apply(x))
            / np.linalg.norm(x)
            for s in range(100)
        ]
        assert np.mean(rel) == pytest.approx(1.0, abs=0.1)

    def test_empty_dims_rejected(self) -> None:
        with pytest.raises(ShapeError):
            TensorSketch((), 8)

    @given(st.integers(2, 5), st.integers(2, 5))
    def test_composite_hash_range(self, d1: int, d2: int) -> None:
        ts = TensorSketch((d1, d2), 16, rng=0)
        op = ts.operator
        assert op.shape == (16, d1 * d2)
        # exactly one ±1 per input coordinate
        assert op.nnz == d1 * d2
