"""Tests for the experiment harness, reports, and complexity models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.experiments.complexity import (
    COMPLEXITY_METHODS,
    space_estimate,
    time_estimate,
)
from repro.experiments.harness import METHOD_NAMES, run_grid, run_method
from repro.experiments.report import (
    format_records,
    format_series,
    format_table,
    pivot,
    speedup_over,
    storage_ratio_over,
)
from repro.tensor.random import random_tensor


@pytest.fixture(scope="module")
def small_tensor() -> np.ndarray:
    return random_tensor((14, 12, 10), (3, 3, 3), rng=0, noise=0.05)


class TestRunMethod:
    def test_all_methods_run(self, small_tensor) -> None:
        for method in METHOD_NAMES:
            rec = run_method(method, small_tensor, (3, 3, 3), seed=0)
            assert rec.method == method
            assert rec.total_seconds > 0
            assert math.isfinite(rec.error)
            assert rec.stored_nbytes > 0
            assert rec.result_nbytes > 0

    def test_dtucker_record_fields(self, small_tensor) -> None:
        rec = run_method("dtucker", small_tensor, (3, 3, 3), seed=0)
        assert set(rec.phases) == {"approximation", "initialization", "iteration"}
        assert rec.error < 0.02
        assert "compression_ratio" in rec.extras

    def test_stored_bytes_semantics(self, small_tensor) -> None:
        dt = run_method("dtucker", small_tensor, (3, 3, 3), seed=0)
        als = run_method("tucker_als", small_tensor, (3, 3, 3), seed=0)
        assert als.stored_nbytes == small_tensor.nbytes
        assert dt.stored_nbytes < als.stored_nbytes

    def test_skip_error(self, small_tensor) -> None:
        rec = run_method("hosvd", small_tensor, (3, 3, 3), compute_error=False)
        assert math.isnan(rec.error)

    def test_method_kwargs_forwarded(self, small_tensor) -> None:
        rec = run_method(
            "mach", small_tensor, (3, 3, 3), seed=0, keep_probability=0.4
        )
        assert rec.extras["keep_fraction"] == pytest.approx(0.4, abs=0.05)

    def test_unknown_method(self, small_tensor) -> None:
        with pytest.raises(DatasetError):
            run_method("nope", small_tensor, (3, 3, 3))


class TestRunGrid:
    def test_grid_shape(self) -> None:
        recs = run_grid(["synthetic"], ["dtucker", "st_hosvd"], scale="tiny", seed=0)
        assert len(recs) == 2
        assert {r.method for r in recs} == {"dtucker", "st_hosvd"}
        assert {r.dataset for r in recs} == {"synthetic"}

    def test_method_kwargs(self) -> None:
        recs = run_grid(
            ["synthetic"],
            ["mach"],
            scale="tiny",
            seed=0,
            method_kwargs={"mach": {"keep_probability": 0.9}},
        )
        assert recs[0].extras["keep_fraction"] > 0.8


class TestReport:
    def test_format_table_alignment(self) -> None:
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_format_records_smoke(self, small_tensor) -> None:
        recs = [run_method("st_hosvd", small_tensor, (3, 3, 3), dataset="syn")]
        out = format_records(recs)
        assert "st_hosvd" in out and "syn" in out and "14x12x10" in out

    def test_pivot(self, small_tensor) -> None:
        recs = [
            run_method("st_hosvd", small_tensor, (3, 3, 3), dataset="a"),
            run_method("rtd", small_tensor, (3, 3, 3), dataset="a"),
        ]
        table = pivot(recs, lambda r: r.error)
        assert set(table["a"]) == {"st_hosvd", "rtd"}

    def test_speedup_over(self, small_tensor) -> None:
        recs = [
            run_method("dtucker", small_tensor, (3, 3, 3), dataset="a", seed=0),
            run_method("tucker_als", small_tensor, (3, 3, 3), dataset="a"),
        ]
        sp = speedup_over(recs)
        assert "tucker_als" in sp["a"]
        assert sp["a"]["tucker_als"] > 0

    def test_storage_ratio_over(self, small_tensor) -> None:
        recs = [
            run_method("dtucker", small_tensor, (3, 3, 3), dataset="a", seed=0),
            run_method("tucker_als", small_tensor, (3, 3, 3), dataset="a"),
        ]
        ratio = storage_ratio_over(recs)["a"]["tucker_als"]
        assert ratio > 1.0

    def test_speedup_missing_base(self, small_tensor) -> None:
        recs = [run_method("rtd", small_tensor, (3, 3, 3), dataset="a", seed=0)]
        assert speedup_over(recs) == {}

    def test_format_series(self) -> None:
        out = format_series("I", [10, 20], {"m1": [0.1, 0.2], "m2": [0.3, 0.4]})
        assert "I" in out and "m1" in out and "0.4000" in out


class TestComplexity:
    def test_all_methods_defined(self) -> None:
        for m in COMPLEXITY_METHODS:
            assert time_estimate(m, (50, 40, 30), 5) > 0
            assert space_estimate(m, (50, 40, 30), 5) > 0

    def test_unknown_method(self) -> None:
        with pytest.raises(DatasetError):
            time_estimate("nope", (10, 10, 10), 2)
        with pytest.raises(DatasetError):
            space_estimate("nope", (10, 10, 10), 2)

    def test_dtucker_space_beats_raw_tensor(self) -> None:
        shape, rank = (320, 240, 7000), 10  # the paper's Boats geometry
        assert space_estimate("dtucker", shape, rank) < space_estimate(
            "tucker_als", shape, rank
        )

    def test_dtucker_time_beats_hooi_at_paper_scale(self) -> None:
        shape, rank = (320, 240, 7000), 10
        assert time_estimate("dtucker", shape, rank) < time_estimate(
            "tucker_als", shape, rank
        )

    def test_space_matches_memory_module(self) -> None:
        from repro.metrics.memory import slice_svd_nbytes, tensor_nbytes

        shape = (64, 48, 100)
        assert space_estimate("dtucker", shape, 8) == slice_svd_nbytes(shape, 8)
        assert space_estimate("hosvd", shape, 8) == tensor_nbytes(shape)

    def test_time_scales_with_dimensionality(self) -> None:
        small = time_estimate("tucker_als", (50, 50, 50), 5)
        big = time_estimate("tucker_als", (100, 100, 100), 5)
        assert big == pytest.approx(8 * small, rel=1e-9)
