"""Tests for the sparse-tensor substrate and sparse D-Tucker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparse_dtucker import compress_sparse, sparse_dtucker
from repro.exceptions import RankError, ShapeError
from repro.sparse import SparseTensor
from repro.tensor.random import random_tensor
from repro.tensor.unfold import unfold


@pytest.fixture
def sparse_lowrank(rng) -> tuple[SparseTensor, np.ndarray]:
    # A low-rank tensor with most entries zeroed in a structured way:
    # zero out random fibers so sparsity does not destroy the rank.
    x = random_tensor((20, 16, 10), (3, 2, 2), rng=rng, noise=0.0)
    mask = rng.random((20, 16, 10)) < 0.4
    y = np.where(mask, x, 0.0)
    return SparseTensor.from_dense(y), y


class TestSparseTensorConstruction:
    def test_from_dense_roundtrip(self, tensor3: np.ndarray) -> None:
        st = SparseTensor.from_dense(tensor3)
        np.testing.assert_allclose(st.to_dense(), tensor3)

    def test_threshold(self) -> None:
        x = np.array([[0.1, 2.0], [3.0, 0.05]])
        st = SparseTensor.from_dense(x, threshold=0.5)
        assert st.nnz == 2

    def test_duplicates_coalesced(self) -> None:
        st = SparseTensor(
            coords=np.array([[0, 0], [0, 0], [1, 1]]),
            values=np.array([1.0, 2.0, 5.0]),
            shape=(2, 2),
        )
        assert st.nnz == 2
        assert st.to_dense()[0, 0] == 3.0

    def test_cancelling_duplicates_dropped(self) -> None:
        st = SparseTensor(
            coords=np.array([[0, 0], [0, 0]]),
            values=np.array([1.0, -1.0]),
            shape=(2, 2),
        )
        assert st.nnz == 0

    def test_out_of_bounds(self) -> None:
        with pytest.raises(ShapeError):
            SparseTensor(
                coords=np.array([[2, 0]]), values=np.array([1.0]), shape=(2, 2)
            )

    def test_bad_coord_shape(self) -> None:
        with pytest.raises(ShapeError):
            SparseTensor(
                coords=np.array([[0, 0, 0]]), values=np.array([1.0]), shape=(2, 2)
            )

    def test_nan_rejected(self) -> None:
        with pytest.raises(ShapeError):
            SparseTensor(
                coords=np.array([[0, 0]]), values=np.array([np.nan]), shape=(2, 2)
            )

    def test_random_density(self) -> None:
        st = SparseTensor.random((20, 20, 20), 0.1, rng=0)
        assert st.density == pytest.approx(0.1, abs=0.01)

    def test_norm_squared(self, tensor3) -> None:
        st = SparseTensor.from_dense(tensor3)
        assert st.norm_squared() == pytest.approx(float(np.sum(tensor3**2)))

    def test_nbytes_scales_with_nnz(self) -> None:
        a = SparseTensor.random((30, 30, 30), 0.01, rng=0)
        b = SparseTensor.random((30, 30, 30), 0.1, rng=0)
        assert a.nbytes < b.nbytes


class TestSparseUnfoldAndSlices:
    def test_unfold_matches_dense(self, tensor3) -> None:
        st = SparseTensor.from_dense(tensor3)
        for n in range(3):
            np.testing.assert_allclose(
                st.unfold(n).toarray(), unfold(tensor3, n)
            )

    def test_unfold_order2(self, rng) -> None:
        m = rng.standard_normal((5, 7))
        st = SparseTensor.from_dense(m)
        np.testing.assert_allclose(st.unfold(0).toarray(), m)
        np.testing.assert_allclose(st.unfold(1).toarray(), m.T)

    def test_slice_matrices_match_dense(self, tensor4) -> None:
        from repro.tensor.slices import to_slices

        st = SparseTensor.from_dense(tensor4)
        slices = st.slice_matrices()
        dense_stack = to_slices(tensor4)
        assert len(slices) == dense_stack.shape[2]
        for l, s in enumerate(slices):
            np.testing.assert_allclose(s.toarray(), dense_stack[:, :, l])

    def test_empty_slices_present(self) -> None:
        st = SparseTensor(
            coords=np.array([[0, 0, 2]]), values=np.array([1.0]), shape=(3, 3, 4)
        )
        slices = st.slice_matrices()
        assert len(slices) == 4
        assert slices[0].nnz == 0 and slices[2].nnz == 1


class TestCompressSparse:
    def test_matches_dense_compress(self, sparse_lowrank) -> None:
        from repro.core.slice_svd import compress

        st, dense = sparse_lowrank
        a = compress_sparse(st, 4, rng=0)
        b = compress(dense, 4, exact=True)
        # Same reconstruction quality (not identical factors — different
        # algorithms), both near-exact at this rank on rank-<=4 slices.
        assert abs(a.compression_error(dense) - b.compression_error(dense)) < 1e-4

    def test_norm_exact(self, sparse_lowrank) -> None:
        st, dense = sparse_lowrank
        ssvd = compress_sparse(st, 3, rng=0)
        assert ssvd.norm_squared == pytest.approx(float(np.sum(dense**2)))

    def test_zero_slice_safe(self) -> None:
        st = SparseTensor(
            coords=np.array([[0, 0, 1]]), values=np.array([2.0]), shape=(4, 4, 3)
        )
        ssvd = compress_sparse(st, 2, rng=0)
        assert np.isfinite(ssvd.u).all()
        np.testing.assert_allclose(ssvd.s[0], 0.0)
        np.testing.assert_allclose(ssvd.s[2], 0.0)

    def test_rank_too_large(self) -> None:
        st = SparseTensor.random((5, 4, 3), 0.5, rng=0)
        with pytest.raises(RankError):
            compress_sparse(st, 5)


class TestSparseDTucker:
    def test_recovers_structured_sparse(self, sparse_lowrank) -> None:
        st, dense = sparse_lowrank
        fit = sparse_dtucker(st, (6, 6, 6), seed=0)
        hooi_err = _hooi_error(dense, (6, 6, 6))
        assert fit.result_.error(dense) <= hooi_err * 1.3 + 1e-3

    def test_phases_and_metadata(self, sparse_lowrank) -> None:
        st, _ = sparse_lowrank
        fit = sparse_dtucker(st, (3, 2, 2), seed=0)
        assert set(fit.timings_.phases) == {
            "approximation", "initialization", "iteration",
        }
        assert len(fit.history_) == fit.n_iters_

    def test_exact_lowrank_dense_equivalent(self, rng) -> None:
        x = random_tensor((20, 16, 10), (3, 2, 2), rng=rng, noise=0.0)
        st = SparseTensor.from_dense(x)
        fit = sparse_dtucker(st, (3, 2, 2), seed=0)
        assert fit.result_.error(x) < 1e-10

    def test_compression_cheaper_than_densify(self) -> None:
        # The point of the extension: compression bytes track nnz.
        st = SparseTensor.random((60, 50, 20), 0.02, rng=0)
        fit = sparse_dtucker(st, (4, 4, 4), seed=0)
        assert st.nbytes < 8 * 60 * 50 * 20  # COO much smaller than dense
        assert fit.slice_svd_.shape == (60, 50, 20)


def _hooi_error(x: np.ndarray, ranks: tuple[int, ...]) -> float:
    from repro.baselines.tucker_als import tucker_als

    return tucker_als(x, ranks).result.error(x)
