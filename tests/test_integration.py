"""Integration tests: whole-library flows across modules.

Each test exercises a realistic end-to-end path a downstream user would
take, combining datasets, the D-Tucker core, baselines, and the harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DTucker,
    StreamingDTucker,
    decompose,
    hosvd,
    mach_tucker,
    rtd,
    st_hosvd,
    tucker_als,
    tucker_ts,
    tucker_ttmts,
)
from repro.datasets import load_dataset
from repro.experiments import run_grid, speedup_over, storage_ratio_over


class TestMethodAgreement:
    """All exact-ish methods must agree on clean low-rank data."""

    def test_all_methods_near_noise_floor(self, rng) -> None:
        from repro.tensor.random import random_tensor

        x = random_tensor((18, 16, 14), (3, 3, 3), rng=rng, noise=0.05)
        ranks = (3, 3, 3)
        noise_floor = tucker_als(x, ranks).result.error(x)
        errors = {
            "dtucker": DTucker(ranks, seed=0).fit(x).result_.error(x),
            "hosvd": hosvd(x, ranks).result.error(x),
            "st_hosvd": st_hosvd(x, ranks).result.error(x),
            "rtd": rtd(x, ranks, seed=0).result.error(x),
            "tucker_ts": tucker_ts(x, ranks, seed=0).result.error(x),
            "tucker_ttmts": tucker_ttmts(x, ranks, seed=0).result.error(x),
        }
        for name, err in errors.items():
            assert err < max(3 * noise_floor, noise_floor + 0.01), (name, err)

    def test_mach_is_worst_but_bounded(self, rng) -> None:
        from repro.tensor.random import random_tensor

        x = random_tensor((18, 16, 14), (3, 3, 3), rng=rng, noise=0.05)
        e = mach_tucker(x, (3, 3, 3), keep_probability=0.3, seed=0).result.error(x)
        assert e < 0.5


class TestDatasetFlows:
    @pytest.mark.parametrize("name", ["boats", "stock", "airquality", "hsi"])
    def test_dtucker_on_each_dataset(self, name: str) -> None:
        data = load_dataset(name, "tiny", seed=0)
        model = DTucker(data.ranks, seed=0).fit(data.tensor)
        hooi = tucker_als(data.tensor, data.ranks)
        # Comparable accuracy: within 20% relative of HOOI (plus floor).
        assert model.result_.error(data.tensor) <= hooi.result.error(
            data.tensor
        ) * 1.2 + 1e-3

    def test_storage_always_smaller_than_dense(self) -> None:
        for name in ("boats", "stock", "hsi"):
            data = load_dataset(name, "tiny", seed=0)
            model = DTucker(data.ranks, seed=0).fit(data.tensor)
            assert model.slice_svd_.nbytes < data.tensor.nbytes


class TestReuseFlow:
    def test_one_compress_many_ranks(self, rng) -> None:
        """The memory-efficiency story: compress once, answer many requests."""
        from repro.tensor.random import random_tensor

        x = random_tensor((20, 18, 16), (4, 4, 4), rng=rng, noise=0.02)
        model = DTucker(ranks=(4, 4, 4), slice_rank=6, seed=0).fit(x)
        errors = {}
        for r in (2, 3, 4):
            errors[r] = model.refit(ranks=(r, r, r)).error(x)
        # Error must be non-increasing in rank.
        assert errors[4] <= errors[3] <= errors[2]

    def test_streaming_then_query(self, rng) -> None:
        from repro.tensor.random import random_tensor

        x = random_tensor((16, 14, 24), (3, 3, 4), rng=rng, noise=0.02)
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        for t0 in range(0, 24, 6):
            s.partial_fit(x[..., t0 : t0 + 6])
        assert s.result_.error(x) < 0.01
        assert s.slice_svd_.nbytes < x.nbytes


class TestHarnessHeadlines:
    def test_paper_shape_holds_on_small_scale(self) -> None:
        """The qualitative claims: less storage than every competitor,
        comparable error to HOOI."""
        recs = run_grid(
            ["airquality"],
            ["dtucker", "tucker_als", "rtd"],
            scale="small",
            seed=0,
        )
        ratios = storage_ratio_over(recs)["airquality"]
        assert all(r > 1.0 for r in ratios.values())
        by_method = {r.method: r for r in recs}
        assert by_method["dtucker"].error <= by_method["tucker_als"].error * 1.5 + 1e-3

    def test_airquality_speedup(self) -> None:
        # The shape class where slice compression shines: one pass over six
        # big slices vs HOOI's repeated full-tensor TTMs.
        recs = run_grid(
            ["airquality"], ["dtucker", "tucker_als"], scale="small", seed=0,
            compute_error=False,
        )
        sp = speedup_over(recs)["airquality"]["tucker_als"]
        assert sp > 1.0


class TestFunctionalApi:
    def test_decompose_roundtrip(self, rng) -> None:
        from repro.tensor.random import random_tensor

        x = random_tensor((15, 12, 10), (3, 2, 2), rng=rng, noise=0.0)
        model = decompose(x, (3, 2, 2), seed=0)
        np.testing.assert_allclose(model.reconstruct(), x, atol=1e-6)

    def test_public_exports_importable(self) -> None:
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
