"""Tests for the out-of-core compression path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.out_of_core import batched_slice_view, compress_npy
from repro.core.slice_svd import compress
from repro.exceptions import RankError, ShapeError
from repro.tensor.random import random_tensor
from repro.tensor.slices import to_slices


@pytest.fixture
def npy_tensor(tmp_path, rng):
    x = random_tensor((18, 14, 5, 4), (3, 3, 2, 2), rng=rng, noise=0.05)
    path = tmp_path / "x.npy"
    np.save(path, x)
    return path, x


class TestBatchedSliceView:
    def test_matches_to_slices(self, npy_tensor) -> None:
        path, x = npy_tensor
        mmap = np.load(path, mmap_mode="r")
        stack = to_slices(x)
        view = batched_slice_view(mmap, 3, 9)
        for offset, l in enumerate(range(3, 9)):
            np.testing.assert_array_equal(view[offset], stack[:, :, l])

    def test_full_range(self, npy_tensor) -> None:
        path, x = npy_tensor
        mmap = np.load(path, mmap_mode="r")
        view = batched_slice_view(mmap, 0, 20)
        np.testing.assert_array_equal(view, np.moveaxis(to_slices(x), 2, 0))

    def test_order2(self, tmp_path, rng) -> None:
        m = rng.standard_normal((6, 5))
        p = tmp_path / "m.npy"
        np.save(p, m)
        view = batched_slice_view(np.load(p, mmap_mode="r"), 0, 1)
        np.testing.assert_array_equal(view[0], m)

    def test_bad_range(self, npy_tensor) -> None:
        path, _ = npy_tensor
        mmap = np.load(path, mmap_mode="r")
        with pytest.raises(ShapeError):
            batched_slice_view(mmap, 5, 3)
        with pytest.raises(ShapeError):
            batched_slice_view(mmap, 0, 21)


class TestCompressNpy:
    def test_matches_in_memory_gram_path(self, tmp_path, rng) -> None:
        # Thin slices force the deterministic Gram path in both, so results
        # are bit-comparable.
        x = random_tensor((40, 6, 8), (3, 3, 2), rng=rng, noise=0.1)
        p = tmp_path / "x.npy"
        np.save(p, x)
        a = compress_npy(p, 3, batch_slices=3)
        b = compress(x, 3)
        np.testing.assert_allclose(a.u, b.u, atol=1e-10)
        np.testing.assert_allclose(a.s, b.s, atol=1e-10)
        assert a.norm_squared == pytest.approx(b.norm_squared)

    def test_randomized_path_quality(self, npy_tensor) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(path, 4, batch_slices=7, rng=0)
        assert ssvd.shape == x.shape
        assert ssvd.compression_error(x) < 0.02

    def test_norm_exact_across_batches(self, npy_tensor) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(path, 3, batch_slices=6, rng=0)
        assert ssvd.norm_squared == pytest.approx(float(np.sum(x * x)))

    def test_batch_size_does_not_change_gram_result(self, tmp_path, rng) -> None:
        x = random_tensor((30, 5, 12), (3, 3, 2), rng=rng, noise=0.1)
        p = tmp_path / "x.npy"
        np.save(p, x)
        a = compress_npy(p, 3, batch_slices=1)
        b = compress_npy(p, 3, batch_slices=12)
        np.testing.assert_allclose(a.s, b.s, atol=1e-10)

    def test_end_to_end_decomposition(self, npy_tensor) -> None:
        from repro.core.initialization import initialize
        from repro.core.iteration import als_sweeps

        path, x = npy_tensor
        ssvd = compress_npy(path, 3, rng=0)
        _, factors = initialize(ssvd, (3, 3, 2, 2))
        out = als_sweeps(ssvd, (3, 3, 2, 2), factors)
        from repro.tensor.products import tucker_to_tensor

        err = np.linalg.norm(
            tucker_to_tensor(out.core, out.factors) - x
        ) ** 2 / np.linalg.norm(x) ** 2
        assert err < 0.02

    def test_rank_too_large(self, npy_tensor) -> None:
        path, _ = npy_tensor
        with pytest.raises(RankError):
            compress_npy(path, 15)

    def test_order1_rejected(self, tmp_path) -> None:
        p = tmp_path / "v.npy"
        np.save(p, np.ones(5))
        with pytest.raises(ShapeError):
            compress_npy(p, 1)


class TestFitFromFile:
    def test_matches_in_memory_quality(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker

        path, x = npy_tensor
        model = DTucker(ranks=(3, 3, 2, 2), seed=0).fit_from_file(path)
        in_memory = DTucker(ranks=(3, 3, 2, 2), seed=0).fit(x)
        assert model.result_.error(x) <= in_memory.result_.error(x) * 1.1 + 1e-4

    def test_attributes_populated(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker

        path, x = npy_tensor
        model = DTucker(ranks=(3, 3, 2, 2), seed=0).fit_from_file(
            path, batch_slices=5
        )
        assert set(model.timings_.phases) == {
            "approximation", "initialization", "iteration",
        }
        assert model.permutation_ == (0, 1, 2, 3)
        assert model.slice_svd_.shape == x.shape
        assert model.history_

    def test_refit_after_file_fit(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker

        path, x = npy_tensor
        model = DTucker(ranks=(3, 3, 2, 2), slice_rank=4, seed=0).fit_from_file(path)
        small = model.refit(ranks=(2, 2, 2, 2))
        assert small.ranks == (2, 2, 2, 2)

    def test_slice_modes_restriction(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import ShapeError

        path, _ = npy_tensor
        with pytest.raises(ShapeError, match="slice_modes"):
            DTucker(ranks=2, slice_modes="largest").fit_from_file(path)

    def test_exact_svd_restriction(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import ShapeError

        path, _ = npy_tensor
        with pytest.raises(ShapeError, match="exact"):
            DTucker(ranks=2, exact_slice_svd=True).fit_from_file(path)

    def test_rank_validation(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import RankError

        path, _ = npy_tensor
        with pytest.raises(RankError):
            DTucker(ranks=(3, 3, 2, 2), slice_rank=1).fit_from_file(path)
