"""Tests for the out-of-core compression path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DTuckerConfig
from repro.core.out_of_core import batched_slice_view, compress_npy
from repro.core.slice_svd import compress
from repro.core.sources import clear_memmap_cache
from repro.exceptions import RankError, ShapeError
from repro.kernels import KernelStats
from repro.tensor.random import random_tensor
from repro.tensor.slices import slice_count, to_slices


@pytest.fixture(autouse=True)
def _fresh_memmap_cache():
    # Handles are cached process-wide (keyed on path + mtime); start and
    # end each test with an empty cache so tmp-file lifetimes stay local.
    clear_memmap_cache()
    yield
    clear_memmap_cache()


@pytest.fixture
def npy_tensor(tmp_path, rng):
    x = random_tensor((18, 14, 5, 4), (3, 3, 2, 2), rng=rng, noise=0.05)
    path = tmp_path / "x.npy"
    np.save(path, x)
    return path, x


class TestBatchedSliceView:
    def test_matches_to_slices(self, npy_tensor) -> None:
        path, x = npy_tensor
        mmap = np.load(path, mmap_mode="r")
        stack = to_slices(x)
        view = batched_slice_view(mmap, 3, 9)
        for offset, l in enumerate(range(3, 9)):
            np.testing.assert_array_equal(view[offset], stack[:, :, l])

    def test_full_range(self, npy_tensor) -> None:
        path, x = npy_tensor
        mmap = np.load(path, mmap_mode="r")
        view = batched_slice_view(mmap, 0, 20)
        np.testing.assert_array_equal(view, np.moveaxis(to_slices(x), 2, 0))

    def test_order2(self, tmp_path, rng) -> None:
        m = rng.standard_normal((6, 5))
        p = tmp_path / "m.npy"
        np.save(p, m)
        view = batched_slice_view(np.load(p, mmap_mode="r"), 0, 1)
        np.testing.assert_array_equal(view[0], m)

    def test_bad_range(self, npy_tensor) -> None:
        path, _ = npy_tensor
        mmap = np.load(path, mmap_mode="r")
        with pytest.raises(ShapeError):
            batched_slice_view(mmap, 5, 3)
        with pytest.raises(ShapeError):
            batched_slice_view(mmap, 0, 21)


class TestCompressNpy:
    def test_matches_in_memory_gram_path(self, tmp_path, rng) -> None:
        # Thin slices force the deterministic Gram path in both, so results
        # are bit-comparable.
        x = random_tensor((40, 6, 8), (3, 3, 2), rng=rng, noise=0.1)
        p = tmp_path / "x.npy"
        np.save(p, x)
        a = compress_npy(p, 3, batch_slices=3)
        b = compress(x, 3)
        np.testing.assert_allclose(a.u, b.u, atol=1e-10)
        np.testing.assert_allclose(a.s, b.s, atol=1e-10)
        assert a.norm_squared == pytest.approx(b.norm_squared)

    def test_randomized_path_quality(self, npy_tensor) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(path, 4, batch_slices=7, rng=0)
        assert ssvd.shape == x.shape
        assert ssvd.compression_error(x) < 0.02

    def test_norm_exact_across_batches(self, npy_tensor) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(path, 3, batch_slices=6, rng=0)
        assert ssvd.norm_squared == pytest.approx(float(np.sum(x * x)))

    def test_batch_size_does_not_change_gram_result(self, tmp_path, rng) -> None:
        x = random_tensor((30, 5, 12), (3, 3, 2), rng=rng, noise=0.1)
        p = tmp_path / "x.npy"
        np.save(p, x)
        a = compress_npy(p, 3, batch_slices=1)
        b = compress_npy(p, 3, batch_slices=12)
        np.testing.assert_allclose(a.s, b.s, atol=1e-10)

    def test_end_to_end_decomposition(self, npy_tensor) -> None:
        from repro.core.initialization import initialize
        from repro.core.iteration import als_sweeps

        path, x = npy_tensor
        ssvd = compress_npy(path, 3, rng=0)
        _, factors = initialize(ssvd, (3, 3, 2, 2))
        out = als_sweeps(ssvd, (3, 3, 2, 2), factors)
        from repro.tensor.products import tucker_to_tensor

        err = np.linalg.norm(
            tucker_to_tensor(out.core, out.factors) - x
        ) ** 2 / np.linalg.norm(x) ** 2
        assert err < 0.02

    def test_rank_too_large(self, npy_tensor) -> None:
        path, _ = npy_tensor
        with pytest.raises(RankError):
            compress_npy(path, 15)

    def test_order1_rejected(self, tmp_path) -> None:
        p = tmp_path / "v.npy"
        np.save(p, np.ones(5))
        with pytest.raises(ShapeError):
            compress_npy(p, 1)


class TestBatchRemainders:
    """Batch sizes that do not divide L evenly, including B > L."""

    # L = 20 slices in the npy_tensor fixture.
    @pytest.mark.parametrize("batch_slices", [1, 3, 7, 19, 20, 21, 1000])
    def test_uneven_batches_cover_all_slices(
        self, npy_tensor, batch_slices
    ) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(path, 3, batch_slices=batch_slices, rng=0)
        assert ssvd.num_slices == slice_count(x.shape)
        assert ssvd.norm_squared == pytest.approx(float(np.sum(x * x)))
        assert ssvd.compression_error(x) < 0.05

    @pytest.mark.parametrize("batch_slices", [3, 7, 1000])
    def test_batching_invariance(self, npy_tensor, batch_slices) -> None:
        # Per-batch omegas come from one stream in batch order, so the
        # result is a function of the seed only, not of the batch size's
        # remainder structure... except that each batch draws its *own*
        # matrix, so only the full-coverage invariants are batch-free.
        path, x = npy_tensor
        ssvd = compress_npy(path, 3, batch_slices=batch_slices, rng=0)
        one = compress_npy(path, 3, batch_slices=batch_slices, rng=0)
        np.testing.assert_array_equal(ssvd.u, one.u)
        np.testing.assert_array_equal(ssvd.s, one.s)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_bitwise_equal(self, npy_tensor, backend) -> None:
        path, _ = npy_tensor
        ref = compress_npy(path, 3, batch_slices=7, rng=0, engine="serial")
        got = compress_npy(path, 3, batch_slices=7, rng=0, engine=backend)
        np.testing.assert_array_equal(got.u, ref.u)
        np.testing.assert_array_equal(got.s, ref.s)
        np.testing.assert_array_equal(got.vt, ref.vt)
        np.testing.assert_array_equal(
            got.slice_norms_squared, ref.slice_norms_squared
        )


class TestPlannerIntegration:
    @pytest.mark.parametrize("strategy", ["auto", "gram", "exact"])
    def test_strategies_cover_and_reconstruct(self, npy_tensor, strategy) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(
            path, 3, batch_slices=7, rng=0,
            config=DTuckerConfig(strategy=strategy),
        )
        assert ssvd.shape == x.shape
        assert ssvd.compression_error(x) < 0.05

    def test_sketch_draws_at_most_one_per_batch(self, npy_tensor) -> None:
        path, x = npy_tensor
        stats = KernelStats()
        ssvd = compress_npy(path, 3, batch_slices=6, rng=0, stats=stats)
        n_batches = -(-slice_count(x.shape) // 6)
        assert sum(stats.plan_decisions().values()) == n_batches
        assert stats.sketch_draws <= n_batches
        assert ssvd.num_slices == slice_count(x.shape)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_float32_path(self, npy_tensor, backend) -> None:
        path, x = npy_tensor
        ssvd = compress_npy(
            path, 3, batch_slices=7, rng=0, engine=backend,
            config=DTuckerConfig(precision="float32"),
        )
        assert ssvd.u.dtype == np.float64  # storage is always float64
        assert ssvd.norm_squared == pytest.approx(
            float(np.sum(x * x)), rel=1e-5
        )
        assert ssvd.compression_error(x) < 0.05

    def test_auto_matches_explicit_method(self, tmp_path, rng) -> None:
        # Thin slices: auto resolves to gram here, so the two runs must be
        # bit-identical.
        x = random_tensor((40, 16, 9), (3, 3, 2), rng=rng, noise=0.1)
        p = tmp_path / "x.npy"
        np.save(p, x)
        a = compress_npy(p, 3, batch_slices=4, config=DTuckerConfig(strategy="auto"))
        b = compress_npy(p, 3, batch_slices=4, config=DTuckerConfig(strategy="gram"))
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.s, b.s)
        np.testing.assert_array_equal(a.vt, b.vt)

    def test_io_annotated_on_trace(self, npy_tensor) -> None:
        from repro.engine import backend_scope

        path, _ = npy_tensor
        with backend_scope("serial") as eng:
            compress_npy(path, 3, batch_slices=6, rng=0, engine=eng)
            traces = list(eng.traces)
        (trace,) = [t for t in traces if t.phase == "approximation-ooc"]
        assert trace.io_seconds > 0.0
        assert trace.io_wait_seconds >= 0.0
        assert "io=" in trace.summary()


class TestFitFromFile:
    def test_matches_in_memory_quality(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker

        path, x = npy_tensor
        model = DTucker(ranks=(3, 3, 2, 2), seed=0).fit_from_file(path)
        in_memory = DTucker(ranks=(3, 3, 2, 2), seed=0).fit(x)
        assert model.result_.error(x) <= in_memory.result_.error(x) * 1.1 + 1e-4

    def test_attributes_populated(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker

        path, x = npy_tensor
        model = DTucker(ranks=(3, 3, 2, 2), seed=0).fit_from_file(
            path, batch_slices=5
        )
        assert set(model.timings_.phases) == {
            "approximation", "initialization", "iteration",
        }
        assert model.permutation_ == (0, 1, 2, 3)
        assert model.slice_svd_.shape == x.shape
        assert model.history_

    def test_refit_after_file_fit(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker

        path, x = npy_tensor
        model = DTucker(ranks=(3, 3, 2, 2), slice_rank=4, seed=0).fit_from_file(path)
        small = model.refit(ranks=(2, 2, 2, 2))
        assert small.ranks == (2, 2, 2, 2)

    def test_slice_modes_restriction(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import ShapeError

        path, _ = npy_tensor
        with pytest.raises(ShapeError, match="slice_modes"):
            DTucker(ranks=2, slice_modes="largest").fit_from_file(path)

    def test_exact_svd_restriction(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import ShapeError

        path, _ = npy_tensor
        with pytest.raises(ShapeError, match="exact"):
            DTucker(ranks=2, exact_slice_svd=True).fit_from_file(path)

    def test_rank_validation(self, npy_tensor) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import RankError

        path, _ = npy_tensor
        with pytest.raises(RankError):
            DTucker(ranks=(3, 3, 2, 2), slice_rank=1).fit_from_file(path)
