"""Tests for the approximation phase (SliceSVD compression)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slice_svd import SliceSVD, compress
from repro.exceptions import RankError, ShapeError
from repro.tensor.norms import frobenius_norm_squared
from repro.tensor.random import random_tensor


@pytest.fixture
def compressed(lowrank3: np.ndarray) -> SliceSVD:
    return compress(lowrank3, 4, rng=0)


class TestCompress:
    def test_geometry(self, compressed: SliceSVD, lowrank3: np.ndarray) -> None:
        assert compressed.shape == lowrank3.shape
        assert compressed.num_slices == 8
        assert compressed.rank == 4
        assert compressed.slice_shape == (12, 10)
        assert compressed.order == 3

    def test_exact_on_lowrank_slices(self, compressed, lowrank3) -> None:
        # Each slice of a rank-(3,2,2) tensor has matrix rank <= 2,
        # so rank-4 compression is lossless.
        np.testing.assert_allclose(compressed.reconstruct(), lowrank3, atol=1e-8)

    def test_norm_squared_exact(self, compressed, lowrank3) -> None:
        assert compressed.norm_squared == pytest.approx(
            frobenius_norm_squared(lowrank3)
        )

    def test_approx_norm_matches_for_lossless(self, compressed, lowrank3) -> None:
        assert compressed.approx_norm_squared() == pytest.approx(
            frobenius_norm_squared(lowrank3), rel=1e-9
        )

    def test_compression_error_zero_for_lossless(self, compressed, lowrank3) -> None:
        assert compressed.compression_error(lowrank3) < 1e-12

    def test_compression_error_positive_for_noisy(self, rng) -> None:
        x = random_tensor((12, 10, 8), (3, 2, 2), rng=rng, noise=0.3)
        ss = compress(x, 3, rng=0)
        assert ss.compression_error(x) > 1e-4

    def test_exact_vs_randomized_agree_on_easy_input(self, lowrank3) -> None:
        a = compress(lowrank3, 4, rng=0)
        b = compress(lowrank3, 4, exact=True)
        np.testing.assert_allclose(a.reconstruct(), b.reconstruct(), atol=1e-7)

    def test_exact_path_uses_sign_convention(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, exact=True)
        for l in range(ss.num_slices):
            idx = np.argmax(np.abs(ss.u[l]), axis=0)
            assert (ss.u[l][idx, np.arange(3)] >= 0).all()

    def test_order2_tensor(self, rng) -> None:
        m = rng.standard_normal((15, 12))
        ss = compress(m, 5, rng=0)
        assert ss.num_slices == 1
        s_ref = np.linalg.svd(m, compute_uv=False)[:5]
        np.testing.assert_allclose(np.sort(ss.s[0])[::-1], ss.s[0])
        np.testing.assert_allclose(ss.s[0], s_ref, rtol=1e-4)

    def test_order4_tensor(self, rng) -> None:
        x = random_tensor((8, 7, 3, 4), (2, 2, 2, 2), rng=rng)
        ss = compress(x, 3, rng=0)
        assert ss.num_slices == 12
        np.testing.assert_allclose(ss.reconstruct(), x, atol=1e-7)

    def test_rank_exceeds_slice(self, rng) -> None:
        with pytest.raises(RankError):
            compress(rng.standard_normal((5, 4, 3)), 5)

    def test_gram_path_selected_for_thin_slices(self, rng) -> None:
        # 40x6 slices with rank 3: the Gram path must give near-exact SVDs.
        x = rng.standard_normal((40, 6, 5))
        ss = compress(x, 3, oversampling=10, rng=0)
        for l in range(5):
            s_ref = np.linalg.svd(x[:, :, l], compute_uv=False)[:3]
            np.testing.assert_allclose(ss.s[l], s_ref, rtol=1e-8)

    def test_seed_reproducible(self, lowrank3) -> None:
        a = compress(lowrank3, 3, rng=7)
        b = compress(lowrank3, 3, rng=7)
        np.testing.assert_array_equal(a.u, b.u)


class TestSliceSVDValidation:
    def test_inconsistent_arrays(self) -> None:
        with pytest.raises(ShapeError):
            SliceSVD(
                u=np.zeros((2, 5, 3)),
                s=np.zeros((2, 4)),
                vt=np.zeros((2, 3, 6)),
                shape=(5, 6, 2),
                norm_squared=1.0,
            )

    def test_slice_count_mismatch(self) -> None:
        with pytest.raises(ShapeError):
            SliceSVD(
                u=np.zeros((3, 5, 2)),
                s=np.zeros((3, 2)),
                vt=np.zeros((3, 2, 6)),
                shape=(5, 6, 2),
                norm_squared=1.0,
            )

    def test_negative_norm(self) -> None:
        with pytest.raises(ShapeError):
            SliceSVD(
                u=np.zeros((2, 5, 2)),
                s=np.zeros((2, 2)),
                vt=np.zeros((2, 2, 6)),
                shape=(5, 6, 2),
                norm_squared=-1.0,
            )


class TestTruncate:
    def test_truncation_keeps_leading(self, compressed: SliceSVD) -> None:
        t = compressed.truncate(2)
        assert t.rank == 2
        np.testing.assert_array_equal(t.s, compressed.s[:, :2])
        np.testing.assert_array_equal(t.u, compressed.u[:, :, :2])

    def test_truncate_preserves_norm(self, compressed: SliceSVD) -> None:
        assert compressed.truncate(2).norm_squared == compressed.norm_squared

    def test_truncate_too_far(self, compressed: SliceSVD) -> None:
        with pytest.raises(RankError):
            compressed.truncate(10)

    def test_truncate_full_is_copy(self, compressed: SliceSVD) -> None:
        t = compressed.truncate(compressed.rank)
        np.testing.assert_array_equal(t.u, compressed.u)
        assert t.u is not compressed.u


class TestAppend:
    def test_append_along_last_mode(self, rng) -> None:
        x = random_tensor((10, 8, 6), (3, 2, 2), rng=rng)
        a = compress(x[:, :, :4], 3, rng=0)
        b = compress(x[:, :, 4:], 3, rng=1)
        merged = a.append(b)
        assert merged.shape == (10, 8, 6)
        assert merged.num_slices == 6
        np.testing.assert_allclose(merged.reconstruct(), x, atol=1e-7)

    def test_append_order4(self, rng) -> None:
        x = random_tensor((6, 5, 3, 4), (2, 2, 2, 2), rng=rng)
        a = compress(x[..., :2], 2, rng=0)
        b = compress(x[..., 2:], 2, rng=1)
        merged = a.append(b)
        assert merged.shape == (6, 5, 3, 4)
        np.testing.assert_allclose(merged.reconstruct(), x, atol=1e-7)

    def test_norm_accumulates(self, rng) -> None:
        x = random_tensor((10, 8, 6), (3, 2, 2), rng=rng)
        a = compress(x[:, :, :4], 3, rng=0)
        b = compress(x[:, :, 4:], 3, rng=1)
        assert a.append(b).norm_squared == pytest.approx(
            frobenius_norm_squared(x)
        )

    def test_incompatible_rank(self, rng) -> None:
        x = rng.standard_normal((10, 8, 4))
        a = compress(x, 3, rng=0)
        b = compress(x, 2, rng=0)
        with pytest.raises(ShapeError):
            a.append(b)

    def test_incompatible_shape(self, rng) -> None:
        a = compress(rng.standard_normal((10, 8, 4)), 3, rng=0)
        b = compress(rng.standard_normal((10, 7, 4)), 3, rng=0)
        with pytest.raises(ShapeError):
            a.append(b)


class TestNbytes:
    def test_matches_formula(self, compressed: SliceSVD) -> None:
        from repro.metrics.memory import slice_svd_nbytes

        assert compressed.nbytes == slice_svd_nbytes((12, 10, 8), 4)

    def test_smaller_than_dense(self, compressed: SliceSVD, lowrank3) -> None:
        assert compressed.nbytes < lowrank3.nbytes
