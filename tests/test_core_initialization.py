"""Tests for the SVD-based initialization phase."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initialization import initialize, random_initialize
from repro.core.slice_svd import compress
from repro.exceptions import RankError
from repro.tensor.norms import core_based_error, frobenius_norm_squared
from repro.tensor.products import tucker_to_tensor
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


class TestInitialize:
    def test_shapes(self, lowrank3: np.ndarray) -> None:
        ss = compress(lowrank3, 3, rng=0)
        core, factors = initialize(ss, (3, 2, 2))
        assert core.shape == (3, 2, 2)
        assert [f.shape for f in factors] == [(12, 3), (10, 2), (8, 2)]

    def test_factors_orthonormal(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, factors = initialize(ss, (3, 2, 2))
        for f in factors:
            assert_orthonormal(f)

    def test_exact_recovery_on_exact_lowrank(self, lowrank3) -> None:
        # For an exactly rank-(3,2,2) tensor, the initialization alone must
        # already be an exact decomposition.
        ss = compress(lowrank3, 3, rng=0)
        core, factors = initialize(ss, (3, 2, 2))
        recon = tucker_to_tensor(core, factors)
        np.testing.assert_allclose(recon, lowrank3, atol=1e-7)

    def test_good_start_on_noisy_tensor(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.1)
        ss = compress(x, 3, rng=0)
        core, _ = initialize(ss, (3, 3, 3))
        err = core_based_error(frobenius_norm_squared(x), core)
        # Initialization should land near the noise floor already.
        assert err < 0.05

    def test_order4(self, rng) -> None:
        x = random_tensor((8, 7, 5, 4), (2, 2, 2, 2), rng=rng)
        ss = compress(x, 2, rng=0)
        core, factors = initialize(ss, (2, 2, 2, 2))
        assert core.shape == (2, 2, 2, 2)
        np.testing.assert_allclose(
            tucker_to_tensor(core, factors), x, atol=1e-6
        )

    def test_order2(self, rng) -> None:
        m = rng.standard_normal((12, 4)) @ rng.standard_normal((4, 9))
        ss = compress(m, 4, rng=0)
        core, factors = initialize(ss, (4, 4))
        np.testing.assert_allclose(tucker_to_tensor(core, factors), m, atol=1e-7)

    def test_rank_exceeding_mode_rejected(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        with pytest.raises(RankError):
            initialize(ss, (13, 2, 2))

    def test_asymmetric_ranks(self, rng) -> None:
        x = random_tensor((12, 10, 8), (4, 2, 3), rng=rng)
        ss = compress(x, 4, rng=0)
        core, factors = initialize(ss, (4, 2, 3))
        assert core.shape == (4, 2, 3)
        np.testing.assert_allclose(tucker_to_tensor(core, factors), x, atol=1e-6)


class TestRandomInitialize:
    def test_shapes_and_orthonormality(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        core, factors = random_initialize(ss, (3, 2, 2), rng=0)
        assert core.shape == (3, 2, 2)
        for f in factors:
            assert_orthonormal(f)

    def test_reproducible(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, f1 = random_initialize(ss, (3, 2, 2), rng=5)
        _, f2 = random_initialize(ss, (3, 2, 2), rng=5)
        for a, b in zip(f1, f2):
            np.testing.assert_array_equal(a, b)

    def test_worse_than_svd_init(self, rng) -> None:
        # The whole point of the initialization phase: the SVD start has a
        # (much) lower starting error than the random start.
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.05)
        ss = compress(x, 3, rng=0)
        core_svd, _ = initialize(ss, (3, 3, 3))
        core_rand, _ = random_initialize(ss, (3, 3, 3), rng=0)
        nsq = frobenius_norm_squared(x)
        assert core_based_error(nsq, core_svd) < core_based_error(nsq, core_rand)
