"""Tests for the dataset simulators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    airquality_like,
    boats_like,
    hsi_like,
    list_datasets,
    load_dataset,
    low_rank_tensor,
    ranks_for,
    scalability_tensor,
    stock_like,
    walking_like,
)
from repro.datasets.registry import get_spec
from repro.exceptions import DatasetError, RankError, ShapeError


def effective_rank(x: np.ndarray, mode: int, threshold: float = 0.95) -> int:
    """Smallest k capturing `threshold` of the mode-unfolding energy."""
    from repro.tensor.unfold import unfold

    s = np.linalg.svd(unfold(x, mode), compute_uv=False)
    energy = np.cumsum(s**2) / np.sum(s**2)
    return int(np.searchsorted(energy, threshold) + 1)


class TestVideoGenerators:
    def test_boats_shape_and_finite(self) -> None:
        v = boats_like(20, 16, 30, seed=0)
        assert v.shape == (20, 16, 30)
        assert np.isfinite(v).all()

    def test_boats_low_spatial_rank(self) -> None:
        v = boats_like(30, 24, 60, seed=0)
        assert effective_rank(v, 0) <= 15

    def test_boats_temporal_structure(self) -> None:
        # Moving objects: consecutive frames are much closer than frames
        # half a clip apart.
        v = boats_like(30, 24, 60, n_objects=3, noise=0.0, seed=0)
        consec = np.mean(np.linalg.norm(v[:, :, 1:] - v[:, :, :-1], axis=(0, 1)))
        distant = np.mean(np.linalg.norm(v[:, :, 30:] - v[:, :, :30], axis=(0, 1)))
        assert consec < 0.5 * distant

    def test_boats_reproducible(self) -> None:
        np.testing.assert_array_equal(
            boats_like(10, 8, 5, seed=3), boats_like(10, 8, 5, seed=3)
        )

    def test_boats_no_objects(self) -> None:
        v = boats_like(10, 8, 5, n_objects=0, noise=0.0, seed=0)
        # Static background: all frames identical.
        assert np.ptp(v.std(axis=(0, 1))) < 1e-12

    def test_boats_negative_objects_rejected(self) -> None:
        with pytest.raises(DatasetError):
            boats_like(10, 8, 5, n_objects=-1)

    def test_walking_shape(self) -> None:
        v = walking_like(20, 16, 30, seed=0)
        assert v.shape == (20, 16, 30)

    def test_walking_periodicity(self) -> None:
        # Periodic walkers: the time-mode autocorrelation has strong
        # off-zero peaks compared with white noise.
        v = walking_like(24, 20, 120, n_walkers=2, noise=0.0, seed=1)
        ts = v.mean(axis=(0, 1)) - v.mean()
        ac = np.correlate(ts, ts, mode="full")[len(ts) - 1 :]
        assert np.max(np.abs(ac[5:])) > 0.1 * ac[0]


class TestStockGenerator:
    def test_shape(self) -> None:
        x = stock_like(25, 12, 50, seed=0)
        assert x.shape == (25, 12, 50)

    def test_znormalised(self) -> None:
        x = stock_like(20, 10, 80, seed=0)
        np.testing.assert_allclose(x.mean(axis=2), 0.0, atol=1e-9)
        np.testing.assert_allclose(x.std(axis=2), 1.0, atol=1e-6)

    def test_cross_sectional_low_rank(self) -> None:
        # The factor model makes the stock mode compressible.
        x = stock_like(60, 10, 120, n_factors=4, seed=0)
        assert effective_rank(x, 0, threshold=0.8) <= 30

    def test_min_features(self) -> None:
        with pytest.raises(DatasetError):
            stock_like(10, 4, 20)

    def test_many_features(self) -> None:
        x = stock_like(10, 54, 30, seed=0)
        assert x.shape[1] == 54 and np.isfinite(x).all()

    def test_reproducible(self) -> None:
        np.testing.assert_array_equal(
            stock_like(8, 6, 20, seed=5), stock_like(8, 6, 20, seed=5)
        )


class TestAirQualityGenerator:
    def test_shape_and_nonnegative(self) -> None:
        x = airquality_like(50, 40, 6, seed=0)
        assert x.shape == (50, 40, 6)
        assert (x >= 0).all()

    def test_station_mode_low_rank(self) -> None:
        x = airquality_like(100, 60, 6, n_regimes=4, noise=0.05, seed=0)
        assert effective_rank(x, 0, threshold=0.9) <= 20

    def test_reproducible(self) -> None:
        np.testing.assert_array_equal(
            airquality_like(10, 8, 3, seed=2), airquality_like(10, 8, 3, seed=2)
        )


class TestHsiGenerator:
    def test_shape_order4(self) -> None:
        x = hsi_like(12, 10, 8, 4, seed=0)
        assert x.shape == (12, 10, 8, 4)

    def test_spectral_low_rank(self) -> None:
        x = hsi_like(24, 24, 16, 4, n_endmembers=4, noise=0.0, seed=0)
        assert effective_rank(x, 2) <= 8

    def test_mostly_positive(self) -> None:
        x = hsi_like(12, 10, 8, 4, noise=0.0, seed=0)
        assert (x > 0).mean() > 0.99


class TestSynthetic:
    def test_low_rank_tensor_noise_floor(self) -> None:
        x = low_rank_tensor((15, 14, 13), (3, 3, 3), noise=0.0, seed=0)
        assert effective_rank(x, 0, threshold=0.999999) <= 3

    def test_scalability_tensor_shape(self) -> None:
        assert scalability_tensor(12, 4, 3, seed=0).shape == (12, 12, 12, 12)

    def test_scalability_order_too_low(self) -> None:
        with pytest.raises(ShapeError):
            scalability_tensor(10, 1, 2)

    def test_scalability_rank_too_big(self) -> None:
        with pytest.raises(RankError):
            scalability_tensor(5, 3, 6)


class TestRegistry:
    def test_list(self) -> None:
        names = list_datasets()
        assert names == sorted(names)
        assert {"boats", "walking", "stock", "airquality", "hsi", "synthetic"} <= set(
            names
        )

    @pytest.mark.parametrize("name", ["boats", "stock", "airquality", "hsi", "synthetic", "walking"])
    def test_load_tiny(self, name: str) -> None:
        data = load_dataset(name, "tiny", seed=0)
        spec = get_spec(name)
        assert data.shape == spec.shapes["tiny"]
        assert all(r <= d for r, d in zip(data.ranks, data.shape))
        assert max(data.ranks) <= 3  # tiny scale clips the rank target

    def test_ranks_for(self) -> None:
        assert ranks_for((100, 5, 30), 10) == (10, 5, 10)

    def test_unknown_dataset(self) -> None:
        with pytest.raises(DatasetError):
            load_dataset("nope", "tiny")

    def test_unknown_scale(self) -> None:
        with pytest.raises(DatasetError):
            load_dataset("boats", "galactic")

    def test_rank_target_override(self) -> None:
        data = load_dataset("boats", "small", seed=0, rank_target=4)
        assert data.ranks == (4, 4, 4)

    def test_seed_changes_data(self) -> None:
        a = load_dataset("synthetic", "tiny", seed=0)
        b = load_dataset("synthetic", "tiny", seed=1)
        assert not np.allclose(a.tensor, b.tensor)

    def test_all_scales_registered(self) -> None:
        for name in list_datasets():
            spec = get_spec(name)
            assert {"tiny", "small", "default", "large"} <= set(spec.shapes)
