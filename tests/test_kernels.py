"""Tests for the sweep-level kernel layer (``repro.kernels``).

The central contract: the cached/workspace-backed iteration path must be
**bit-identical** to the historical uncached loop on every backend and
tensor order — the kernel layer may only remove redundant work, never
change a single floating-point operation's inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DTuckerConfig
from repro.core.initialization import initialize
from repro.core.iteration import als_sweeps
from repro.core.slice_svd import compress
from repro.engine import backend_scope
from repro.exceptions import ConvergenceError
from repro.kernels import (
    BufferPool,
    KernelStats,
    SweepWorkspace,
    clear_plan_cache,
    naive_als_sweeps,
    plan_cache_info,
    plan_ttm_chain,
)
from repro.kernels.contractions import (
    mode1_chunk,
    mode1_from_projection_chunk,
    mode2_chunk,
    mode2_from_projection_chunk,
    project_left_chunk,
    project_right_chunk,
    w_chunk,
    w_from_projections_chunk,
)
from repro.tensor.random import random_tensor

CASES = [
    ((12, 11, 8), (3, 3, 2)),          # order 3
    ((9, 8, 6, 5), (3, 3, 2, 2)),      # order 4
    ((7, 6, 5, 4, 3), (2, 2, 2, 2, 2)),  # order 5
]


def _problem(shape, ranks, *, rng=1, noise=0.02):
    x = random_tensor(shape, ranks, rng=rng, noise=noise)
    ssvd = compress(x, max(ranks[:2]) + 2, rng=0)
    _, factors = initialize(ssvd, ranks)
    return ssvd, factors


class TestWorkspaceParity:
    """Workspace path == naive path, bit for bit, everywhere."""

    @pytest.mark.parametrize("shape,ranks", CASES)
    def test_serial_parity(self, shape, ranks) -> None:
        ssvd, factors = _problem(shape, ranks)
        cfg = DTuckerConfig(max_iters=6, tol=1e-300)
        ref = naive_als_sweeps(ssvd, ranks, factors, config=cfg)
        got = als_sweeps(ssvd, ranks, factors, config=cfg)
        np.testing.assert_array_equal(got.core, ref.core)
        for a, b in zip(got.factors, ref.factors):
            np.testing.assert_array_equal(a, b)
        assert got.errors == ref.errors

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("shape,ranks", CASES)
    def test_backend_parity(self, backend, shape, ranks) -> None:
        ssvd, factors = _problem(shape, ranks)
        cfg = DTuckerConfig(max_iters=4, tol=1e-300)
        ref = naive_als_sweeps(ssvd, ranks, factors, config=cfg)
        with backend_scope(backend, n_workers=2, chunk_size=3) as eng:
            got = als_sweeps(ssvd, ranks, factors, config=cfg, engine=eng)
        np.testing.assert_array_equal(got.core, ref.core)
        for a, b in zip(got.factors, ref.factors):
            np.testing.assert_array_equal(a, b)
        assert got.errors == ref.errors

    def test_workspace_reuse_across_calls_is_identical(self) -> None:
        # A warm workspace (second run on the same ssvd/factors) must give
        # exactly the same answer as a cold one.
        ssvd, factors = _problem(*CASES[1])
        cfg = DTuckerConfig(max_iters=3, tol=1e-300)
        ws = SweepWorkspace(ssvd)
        first = als_sweeps(ssvd, (3, 3, 2, 2), factors, config=cfg, workspace=ws)
        warm = als_sweeps(ssvd, (3, 3, 2, 2), factors, config=cfg, workspace=ws)
        cold = als_sweeps(ssvd, (3, 3, 2, 2), factors, config=cfg)
        np.testing.assert_array_equal(warm.core, cold.core)
        np.testing.assert_array_equal(first.core, cold.core)

    def test_workspace_bound_elsewhere_rejected(self) -> None:
        ssvd, factors = _problem(*CASES[0])
        other_ssvd, _ = _problem(*CASES[0], rng=2)
        ws = SweepWorkspace(other_ssvd)
        with pytest.raises(ConvergenceError):
            als_sweeps(ssvd, (3, 3, 2), factors, workspace=ws)


class TestKernelStats:
    @pytest.mark.parametrize("shape,ranks", CASES)
    def test_w_built_once_per_sweep(self, shape, ranks) -> None:
        # The historical loop evaluated W twice per sweep; the workspace
        # must do it exactly once (the CI perf-smoke guard).
        ssvd, factors = _problem(shape, ranks)
        cfg = DTuckerConfig(max_iters=5, tol=1e-300)
        out = als_sweeps(ssvd, ranks, factors, config=cfg)
        assert out.kernel_stats is not None
        assert out.kernel_stats.sweeps == out.n_iters
        assert out.kernel_stats.w_evals_per_sweep() <= 1.0

    def test_projection_cache_hit_rates(self) -> None:
        # Steady state: au misses once per sweep (factor-0 update), av once
        # (factor-1 update); both are hit at least once per sweep.
        ssvd, factors = _problem(*CASES[1])
        cfg = DTuckerConfig(max_iters=6, tol=1e-300)
        out = als_sweeps(ssvd, (3, 3, 2, 2), factors, config=cfg)
        st = out.kernel_stats
        assert st.misses_for("au") == st.sweeps
        # av additionally misses once in sweep 1 (initial factors).
        assert st.misses_for("av") == st.sweeps + 1
        assert st.hits_for("au") >= st.sweeps
        assert st.hits_for("w") >= st.sweeps

    def test_chain_prefix_reuse_for_higher_orders(self) -> None:
        ssvd, factors = _problem(*CASES[2])
        cfg = DTuckerConfig(max_iters=4, tol=1e-300)
        out = als_sweeps(ssvd, (2, 2, 2, 2, 2), factors, config=cfg)
        assert out.kernel_stats.hits_for("chain") > 0

    def test_buffer_bytes_reused_after_first_sweep(self) -> None:
        ssvd, factors = _problem(*CASES[1])
        cfg = DTuckerConfig(max_iters=4, tol=1e-300)
        out = als_sweeps(ssvd, (3, 3, 2, 2), factors, config=cfg)
        assert out.kernel_stats.bytes_reused > 0

    def test_stats_delta_and_merge(self) -> None:
        a = KernelStats()
        a.record_miss("w")
        a.record_hit("au")
        snap = a.copy()
        a.record_hit("w")
        a.sweeps += 1
        d = a.delta(snap)
        assert d.hits_for("w") == 1 and d.misses_for("w") == 0
        assert d.sweeps == 1
        b = KernelStats()
        b.merge(a)
        b.merge(d)
        assert b.hits_for("w") == 2
        assert b.w_evals == 1

    def test_trace_carries_cache_counters(self) -> None:
        ssvd, factors = _problem(*CASES[0])
        cfg = DTuckerConfig(max_iters=3, tol=1e-300)
        with backend_scope("serial") as eng:
            als_sweeps(ssvd, (3, 3, 2), factors, config=cfg, engine=eng)
            trace = next(t for t in eng.traces if t.phase == "iteration")
        assert trace.cache_hits > 0
        assert trace.cache_misses > 0
        assert "cache=" in trace.summary()


class TestPlanner:
    def test_plan_memoized(self) -> None:
        clear_plan_cache()
        shape = (4, 5, 6, 7)
        mats = ((6, 2), (7, 3))
        order1 = plan_ttm_chain(shape, mats, (2, 3), transpose=True)
        before = plan_cache_info()
        order2 = plan_ttm_chain(shape, mats, (2, 3), transpose=True)
        after = plan_cache_info()
        assert order1 == order2
        assert after["hits"] == before["hits"] + 1

    def test_plan_tracks_evolving_shape(self) -> None:
        # Greedy against the evolving intermediate: the strongest shrink
        # goes first, and shrink ratios are re-read per step, not from the
        # original shape.
        clear_plan_cache()
        order = plan_ttm_chain((10, 10, 100, 4), ((100, 2), (4, 3)), (2, 3), True)
        # Mode 2 shrinks by 50x, mode 3 by 4/3: mode 2 first.
        assert order == (0, 1)

    def test_plan_matches_executed_product(self) -> None:
        # The planned order must agree with what multi_mode_product does —
        # validated by checking the contraction result against the slow
        # unordered reference.
        from repro.tensor.products import mode_product, multi_mode_product

        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 6, 7, 8))
        mats = [rng.standard_normal((7, 3)), rng.standard_normal((8, 2))]
        got = multi_mode_product(x, mats, modes=[2, 3], transpose=True)
        ref = mode_product(mode_product(x, mats[0], 2, transpose=True), mats[1], 3, transpose=True)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)


class TestBufferPool:
    def test_reuse_on_matching_shape(self) -> None:
        pool = BufferPool()
        a = pool.take("x", (4, 5))
        b = pool.take("x", (4, 5))
        assert a is b
        assert pool.bytes_reused == a.nbytes
        assert len(pool) == 1

    def test_reallocates_on_shape_change(self) -> None:
        pool = BufferPool()
        a = pool.take("x", (4, 5))
        b = pool.take("x", (6, 5))
        assert a is not b
        assert b.shape == (6, 5)
        assert pool.bytes_reused == 0

    def test_clear_drops_buffers(self) -> None:
        pool = BufferPool()
        pool.take("x", (4, 5))
        pool.clear()
        assert len(pool) == 0
        assert pool.nbytes == 0


class TestContractionKernels:
    """Fused kernels == projection-cached kernels, with and without out=."""

    def _triples(self):
        rng = np.random.default_rng(3)
        L, i1, i2, k, j1, j2 = 6, 9, 8, 4, 3, 3
        u = rng.standard_normal((L, i1, k))
        s = rng.standard_normal((L, k))
        vt = rng.standard_normal((L, k, i2))
        a1 = rng.standard_normal((i1, j1))
        a2 = rng.standard_normal((i2, j2))
        return u, s, vt, a1, a2

    def test_w_kernels_agree(self) -> None:
        u, s, vt, a1, a2 = self._triples()
        fused = w_chunk(u, s, vt, a1=a1, a2=a2)
        au = project_left_chunk(u, a1=a1)
        av = project_right_chunk(vt, a2=a2)
        cached = w_from_projections_chunk(au, s, av)
        np.testing.assert_array_equal(fused, cached)
        out = np.empty_like(fused)
        np.testing.assert_array_equal(
            w_from_projections_chunk(au, s, av, out=out), fused
        )

    def test_mode1_kernels_agree(self) -> None:
        u, s, vt, a1, a2 = self._triples()
        fused = mode1_chunk(u, s, vt, a2=a2)
        av = project_right_chunk(vt, a2=a2)
        np.testing.assert_array_equal(
            mode1_from_projection_chunk(u, s, av), fused
        )

    def test_mode2_kernels_agree(self) -> None:
        u, s, vt, a1, a2 = self._triples()
        fused = mode2_chunk(u, s, vt, a1=a1)
        au = project_left_chunk(u, a1=a1)
        np.testing.assert_array_equal(
            mode2_from_projection_chunk(au, s, vt), fused
        )

    def test_chunked_equals_oneshot(self) -> None:
        u, s, vt, a1, a2 = self._triples()
        full = w_chunk(u, s, vt, a1=a1, a2=a2)
        parts = [
            w_chunk(u[i : i + 2], s[i : i + 2], vt[i : i + 2], a1=a1, a2=a2)
            for i in range(0, u.shape[0], 2)
        ]
        np.testing.assert_array_equal(np.concatenate(parts, axis=0), full)


class TestModeProductOut:
    def test_out_matches_allocating_path(self) -> None:
        from repro.tensor.products import mode_product

        rng = np.random.default_rng(7)
        x = rng.standard_normal((5, 6, 7))
        a = rng.standard_normal((6, 3))
        ref = mode_product(x, a, 1, transpose=True)
        buf = np.empty((3, 5, 7))
        got = mode_product(x, a, 1, transpose=True, out=buf)
        np.testing.assert_array_equal(got, ref)

    def test_out_shape_mismatch_raises(self) -> None:
        from repro.exceptions import ShapeError
        from repro.tensor.products import mode_product

        rng = np.random.default_rng(7)
        x = rng.standard_normal((5, 6, 7))
        a = rng.standard_normal((6, 3))
        with pytest.raises(ShapeError):
            mode_product(x, a, 1, transpose=True, out=np.empty((5, 3, 7)))


class TestStreamingWorkspace:
    def test_streaming_accumulates_kernel_stats(self) -> None:
        from repro.core.streaming import StreamingDTucker

        rng = np.random.default_rng(0)
        model = StreamingDTucker((3, 3, 2), sweeps_per_update=2, seed=0)
        model.partial_fit(rng.standard_normal((10, 9, 4)))
        model.partial_fit(rng.standard_normal((10, 9, 3)))
        assert model.kernel_stats_.sweeps >= 2
        assert model.kernel_stats_.w_evals_per_sweep() <= 1.0
        # The temporal re-init's projections warm the first sweep: the
        # second update must record av cache hits beyond the sweeps' own.
        assert model.kernel_stats_.hits_for("av") > 0
