"""Tests for deterministic SVD helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import RankError, ShapeError
from repro.linalg.svd import (
    leading_left_singular_vectors,
    robust_svd,
    sign_fix,
    solve_gram,
    truncated_svd,
)
from tests.conftest import assert_orthonormal


class TestSignFix:
    def test_largest_entry_positive(self, rng) -> None:
        u = rng.standard_normal((8, 3))
        fixed, _ = sign_fix(u)
        idx = np.argmax(np.abs(fixed), axis=0)
        assert (fixed[idx, np.arange(3)] > 0).all()

    def test_product_preserved(self, rng) -> None:
        a = rng.standard_normal((6, 4))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        uf, vtf = sign_fix(u, vt)
        np.testing.assert_allclose(uf @ np.diag(s) @ vtf, a, atol=1e-10)

    def test_idempotent(self, rng) -> None:
        u = rng.standard_normal((8, 3))
        once, _ = sign_fix(u)
        twice, _ = sign_fix(once)
        np.testing.assert_array_equal(once, twice)

    def test_zero_column_sign_one(self) -> None:
        u = np.zeros((3, 1))
        fixed, _ = sign_fix(u)
        np.testing.assert_array_equal(fixed, u)


class TestTruncatedSvd:
    def test_exact_on_lowrank(self, rng) -> None:
        a = rng.standard_normal((12, 3)) @ rng.standard_normal((3, 10))
        u, s, vt = truncated_svd(a, 3)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-9)

    def test_shapes(self, rng) -> None:
        u, s, vt = truncated_svd(rng.standard_normal((8, 6)), 2)
        assert u.shape == (8, 2) and s.shape == (2,) and vt.shape == (2, 6)

    def test_descending_singular_values(self, rng) -> None:
        _, s, _ = truncated_svd(rng.standard_normal((8, 6)), 4)
        assert (np.diff(s) <= 0).all()

    def test_best_rank_k_error(self, rng) -> None:
        # Eckart-Young: truncation error equals the tail singular values.
        a = rng.standard_normal((10, 8))
        full_s = np.linalg.svd(a, compute_uv=False)
        u, s, vt = truncated_svd(a, 3)
        err = np.linalg.norm(a - u @ np.diag(s) @ vt)
        assert err == pytest.approx(np.linalg.norm(full_s[3:]), rel=1e-9)

    def test_rank_too_large(self, rng) -> None:
        with pytest.raises(RankError):
            truncated_svd(rng.standard_normal((4, 6)), 5)

    def test_rank_zero(self, rng) -> None:
        with pytest.raises(ShapeError):
            truncated_svd(rng.standard_normal((4, 6)), 0)


class TestLeadingLeftSingularVectors:
    def test_orthonormal(self, rng) -> None:
        assert_orthonormal(
            leading_left_singular_vectors(rng.standard_normal((10, 7)), 3)
        )

    def test_gram_and_svd_paths_agree(self, rng) -> None:
        # Wide matrix triggers the Gram path; compare against the SVD path
        # on the same data (transposed twice to force the other branch).
        a = rng.standard_normal((6, 50))
        via_gram = leading_left_singular_vectors(a, 3)
        u_ref = np.linalg.svd(a, full_matrices=False)[0][:, :3]
        from repro.linalg.svd import sign_fix as sf

        u_ref, _ = sf(u_ref)
        np.testing.assert_allclose(np.abs(via_gram), np.abs(u_ref), atol=1e-8)

    def test_spans_dominant_subspace(self, rng) -> None:
        u_true = np.linalg.qr(rng.standard_normal((20, 2)))[0]
        a = u_true @ np.diag([5.0, 3.0]) @ rng.standard_normal((2, 15))
        u = leading_left_singular_vectors(a, 2)
        # Projection of the true basis onto the recovered one is identity.
        np.testing.assert_allclose(np.abs(u.T @ u_true), np.abs(u_true.T @ u).T, atol=1e-8)
        assert np.linalg.norm(u @ (u.T @ a) - a) < 1e-8

    def test_rank_exceeds_rows(self, rng) -> None:
        with pytest.raises(RankError):
            leading_left_singular_vectors(rng.standard_normal((3, 10)), 4)


class TestSolveGram:
    def test_spd_solve(self, rng) -> None:
        a = rng.standard_normal((8, 8))
        g = a @ a.T + np.eye(8)
        b = rng.standard_normal((8, 3))
        x = solve_gram(g, b)
        np.testing.assert_allclose(g @ x, b, atol=1e-8)

    def test_ridge(self, rng) -> None:
        g = np.eye(4)
        b = np.ones((4, 1))
        x = solve_gram(g, b, ridge=1.0)
        np.testing.assert_allclose(x, b / 2.0)

    def test_singular_falls_back_to_pinv(self) -> None:
        g = np.zeros((3, 3))
        b = np.ones((3, 1))
        x = solve_gram(g, b)
        np.testing.assert_allclose(x, np.zeros((3, 1)))

    def test_nonsquare_rejected(self, rng) -> None:
        with pytest.raises(RankError):
            solve_gram(rng.standard_normal((3, 4)), np.ones(3))

    @given(st.integers(1, 6))
    def test_identity(self, n: int) -> None:
        b = np.arange(float(n))
        np.testing.assert_allclose(solve_gram(np.eye(n), b), b)


class TestRobustSvd:
    def test_healthy_input_is_the_literal_numpy_call(self, rng) -> None:
        a = rng.standard_normal((10, 7))
        u1, s1, vt1 = robust_svd(a)
        u2, s2, vt2 = np.linalg.svd(a, full_matrices=False)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(vt1, vt2)

    def test_gesdd_failure_falls_back_to_gesvd(self, rng, monkeypatch) -> None:
        a = rng.standard_normal((9, 6))
        calls = {"n": 0}
        real_svd = np.linalg.svd

        def flaky_svd(*args, **kwargs):
            calls["n"] += 1
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(np.linalg, "svd", flaky_svd)
        u, s, vt = robust_svd(a)
        monkeypatch.setattr(np.linalg, "svd", real_svd)
        assert calls["n"] == 1  # gesdd was tried exactly once
        # The gesvd factors reconstruct the input and agree with the
        # (restored) reference decomposition up to round-off.
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-10)
        _, s_ref, _ = np.linalg.svd(a, full_matrices=False)
        np.testing.assert_allclose(s, s_ref, atol=1e-10)
        assert_orthonormal(u)

    def test_persistent_failure_propagates(self, monkeypatch) -> None:
        def broken(*args, **kwargs):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(np.linalg, "svd", broken)
        monkeypatch.setattr(
            "scipy.linalg.svd",
            lambda *a, **k: (_ for _ in ()).throw(
                np.linalg.LinAlgError("gesvd failed too")
            ),
        )
        with pytest.raises(np.linalg.LinAlgError):
            robust_svd(np.eye(3))

    def test_full_matrices_shapes(self, rng) -> None:
        a = rng.standard_normal((8, 5))
        u, s, vt = robust_svd(a, full_matrices=True)
        assert u.shape == (8, 8) and s.shape == (5,) and vt.shape == (5, 5)
