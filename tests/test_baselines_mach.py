"""Tests for the MACH sampling baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mach import mach_tucker, sample_tensor
from repro.exceptions import ShapeError
from repro.tensor.random import random_tensor


class TestSampleTensor:
    def test_unbiased(self, rng) -> None:
        # E[sampled] = x: per-entry std of the 200-sample mean is ~0.33 here,
        # so the global average deviation must be near zero and no entry
        # should stray beyond ~5 sigma.
        x = rng.standard_normal((10, 10, 10)) + 3.0
        mean = np.mean([sample_tensor(x, 0.3, rng=s)[0] for s in range(200)], axis=0)
        assert abs(float(np.mean(mean - x))) < 0.05
        assert np.max(np.abs(mean - x)) < 1.7

    def test_keep_fraction(self, rng) -> None:
        x = rng.standard_normal((30, 30, 30))
        _, frac = sample_tensor(x, 0.25, rng=0)
        assert frac == pytest.approx(0.25, abs=0.02)

    def test_p_one_keeps_everything(self, rng) -> None:
        x = rng.standard_normal((5, 5, 5))
        sampled, frac = sample_tensor(x, 1.0, rng=0)
        np.testing.assert_array_equal(sampled, x)
        assert frac == 1.0

    def test_invalid_probability(self, rng) -> None:
        x = rng.standard_normal((4, 4))
        with pytest.raises(ShapeError):
            sample_tensor(x, 0.0)
        with pytest.raises(ShapeError):
            sample_tensor(x, 1.5)

    def test_zeroed_entries_rescaled(self, rng) -> None:
        x = np.ones((20, 20))
        sampled, _ = sample_tensor(x, 0.5, rng=0)
        nonzero = sampled[sampled != 0]
        np.testing.assert_allclose(nonzero, 2.0)


class TestMachTucker:
    def test_full_sampling_equals_hooi(self, lowrank3) -> None:
        from repro.baselines.tucker_als import tucker_als

        fit = mach_tucker(lowrank3, (3, 2, 2), keep_probability=1.0, seed=0)
        ref = tucker_als(lowrank3, (3, 2, 2))
        assert fit.result.error(lowrank3) == pytest.approx(
            ref.result.error(lowrank3), abs=1e-10
        )

    def test_accuracy_degrades_with_sampling(self, rng) -> None:
        x = random_tensor((16, 14, 12), (3, 3, 3), rng=rng, noise=0.05)
        e_full = mach_tucker(x, (3, 3, 3), keep_probability=1.0, seed=0).result.error(x)
        e_small = mach_tucker(x, (3, 3, 3), keep_probability=0.05, seed=0).result.error(x)
        assert e_small > e_full

    def test_extras_recorded(self, lowrank3) -> None:
        fit = mach_tucker(lowrank3, (3, 2, 2), keep_probability=0.3, seed=0)
        assert 0.2 < fit.extras["keep_fraction"] < 0.4
        assert fit.extras["stored_nbytes"] > 0

    def test_sampling_phase_timed(self, lowrank3) -> None:
        fit = mach_tucker(lowrank3, (3, 2, 2), keep_probability=0.5, seed=0)
        assert "sampling" in fit.timings

    def test_stored_bytes_scale_with_p(self, lowrank3) -> None:
        f1 = mach_tucker(lowrank3, (3, 2, 2), keep_probability=0.1, seed=0)
        f2 = mach_tucker(lowrank3, (3, 2, 2), keep_probability=0.9, seed=0)
        assert f1.extras["stored_nbytes"] < f2.extras["stored_nbytes"]

    def test_seed_reproducible(self, lowrank3) -> None:
        a = mach_tucker(lowrank3, (3, 2, 2), keep_probability=0.5, seed=3)
        b = mach_tucker(lowrank3, (3, 2, 2), keep_probability=0.5, seed=3)
        np.testing.assert_array_equal(a.result.core, b.result.core)
