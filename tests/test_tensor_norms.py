"""Tests for Frobenius norms and error measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.tensor.norms import (
    core_based_error,
    fit_score,
    frobenius_norm,
    frobenius_norm_squared,
    reconstruction_error,
    relative_error,
)
from repro.tensor.products import multi_mode_product
from repro.tensor.random import random_tensor, random_tucker


class TestFrobenius:
    def test_matches_numpy(self, tensor3: np.ndarray) -> None:
        assert frobenius_norm(tensor3) == pytest.approx(np.linalg.norm(tensor3))

    def test_squared_consistent(self, tensor3: np.ndarray) -> None:
        assert frobenius_norm_squared(tensor3) == pytest.approx(
            frobenius_norm(tensor3) ** 2
        )

    @given(st.floats(0.1, 10.0))
    def test_scaling(self, c: float) -> None:
        x = np.ones((3, 4, 2))
        assert frobenius_norm(c * x) == pytest.approx(c * frobenius_norm(x))

    def test_zero(self) -> None:
        assert frobenius_norm(np.zeros((2, 3))) == 0.0


class TestRelativeError:
    def test_exact_match_is_zero(self, tensor3: np.ndarray) -> None:
        assert relative_error(tensor3, tensor3.copy()) == 0.0

    def test_zero_estimate_is_one(self, tensor3: np.ndarray) -> None:
        assert relative_error(tensor3, np.zeros_like(tensor3)) == pytest.approx(1.0)

    def test_shape_mismatch(self) -> None:
        with pytest.raises(ShapeError):
            relative_error(np.ones((2, 3)), np.ones((3, 2)))

    def test_zero_reference(self) -> None:
        with pytest.raises(ShapeError):
            relative_error(np.zeros((2, 2)), np.ones((2, 2)))

    def test_triangle_like_bound(self, rng) -> None:
        x = rng.standard_normal((4, 5))
        y = rng.standard_normal((4, 5))
        assert relative_error(x, y) <= 1.0 + np.linalg.norm(y) / np.linalg.norm(x)


class TestPaperMetrics:
    def test_reconstruction_error_is_squared(self, tensor3, rng) -> None:
        y = tensor3 + 0.1 * rng.standard_normal(tensor3.shape)
        assert reconstruction_error(tensor3, y) == pytest.approx(
            relative_error(tensor3, y) ** 2
        )

    def test_fit_complement(self, tensor3, rng) -> None:
        y = tensor3 + 0.1 * rng.standard_normal(tensor3.shape)
        assert fit_score(tensor3, y) == pytest.approx(
            1.0 - relative_error(tensor3, y)
        )


class TestCoreBasedError:
    def test_matches_direct_error_for_projection(self, rng) -> None:
        # Project X onto orthonormal factors; Pythagoras must hold exactly.
        x = random_tensor((10, 9, 8), (3, 3, 3), rng=rng, noise=0.2)
        _, factors = random_tucker((10, 9, 8), (4, 4, 4), rng)
        core = multi_mode_product(x, factors, transpose=True)
        from repro.tensor.products import tucker_to_tensor

        direct = reconstruction_error(x, tucker_to_tensor(core, factors))
        estimated = core_based_error(frobenius_norm_squared(x), core)
        assert estimated == pytest.approx(direct, abs=1e-10)

    def test_clipped_at_zero(self) -> None:
        # ||G|| slightly exceeding ||X|| (round-off) must not go negative.
        assert core_based_error(1.0, np.array([[1.0000001]])) == 0.0

    def test_rejects_nonpositive_norm(self) -> None:
        with pytest.raises(ShapeError):
            core_based_error(0.0, np.ones((2, 2)))

    @given(st.floats(0.01, 0.99))
    def test_range(self, frac: float) -> None:
        # A core carrying `frac` of the energy gives error 1 - frac.
        core = np.array([np.sqrt(frac)])
        assert core_based_error(1.0, core) == pytest.approx(1.0 - frac)
