"""Tests for the discovery utilities (residual scores, anomalies, similarity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    AnomalyReport,
    detect_anomalies,
    factor_cosine_similarity,
    nearest_neighbors,
    residual_scores,
)
from repro.core.dtucker import DTucker
from repro.core.result import TuckerResult
from repro.exceptions import ShapeError
from repro.tensor.random import random_tensor, random_tucker


@pytest.fixture
def fitted(rng):
    x = random_tensor((14, 12, 30), (3, 3, 3), rng=rng, noise=0.05)
    model = DTucker(ranks=(3, 3, 3), seed=0).fit(x)
    return x, model.result_


class TestResidualScores:
    def test_shape(self, fitted) -> None:
        x, result = fitted
        assert residual_scores(x, result, 2).shape == (30,)
        assert residual_scores(x, result, 0).shape == (14,)

    def test_relative_in_unit_interval_for_good_fit(self, fitted) -> None:
        x, result = fitted
        scores = residual_scores(x, result, 2)
        assert (scores >= 0).all() and (scores <= 1.0).all()

    def test_absolute_sums_to_total_residual(self, fitted) -> None:
        x, result = fitted
        scores = residual_scores(x, result, 2, relative=False)
        total = float(np.sum((x - result.reconstruct()) ** 2))
        assert float(scores.sum()) == pytest.approx(total)

    def test_detects_injected_anomaly(self, rng) -> None:
        # An injected burst adds residual energy the low-rank model cannot
        # absorb; the *absolute* score singles the frame out (the relative
        # score divides by the inflated frame energy, diluting the signal).
        x = random_tensor((14, 12, 40), (3, 3, 3), rng=rng, noise=0.02)
        x[:, :, 17] += rng.standard_normal((14, 12)) * 2.0
        result = DTucker(ranks=(3, 3, 3), seed=0).fit(x).result_
        scores = residual_scores(x, result, 2, relative=False)
        assert int(np.argmax(scores)) == 17

    def test_zero_energy_index_scores_zero(self, rng) -> None:
        x = random_tensor((10, 8, 12), (2, 2, 2), rng=rng)
        x[:, :, 5] = 0.0
        core, factors = random_tucker((10, 8, 12), (2, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        scores = residual_scores(x, result, 2)
        assert scores[5] == 0.0

    def test_shape_mismatch(self, fitted, rng) -> None:
        _, result = fitted
        with pytest.raises(ShapeError):
            residual_scores(rng.standard_normal((5, 5, 5)), result, 0)


class TestDetectAnomalies:
    def test_flags_outlier(self) -> None:
        scores = np.concatenate([np.full(50, 0.1), [0.9]])
        report = detect_anomalies(scores, z=2.0)
        assert report.count == 1
        assert report.indices.tolist() == [50]

    def test_no_anomalies_in_constant_scores(self) -> None:
        report = detect_anomalies(np.full(20, 0.3))
        assert report.count == 0

    def test_threshold_formula(self) -> None:
        scores = np.arange(10.0)
        report = detect_anomalies(scores, z=1.0)
        assert report.threshold == pytest.approx(scores.mean() + scores.std())

    def test_top_k(self) -> None:
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        report = detect_anomalies(scores)
        assert report.top(2).tolist() == [1, 3]

    def test_empty_rejected(self) -> None:
        with pytest.raises(ShapeError):
            detect_anomalies(np.array([]))

    def test_nan_rejected(self) -> None:
        with pytest.raises(ShapeError):
            detect_anomalies(np.array([0.1, np.nan]))

    def test_report_type(self) -> None:
        assert isinstance(detect_anomalies(np.ones(3)), AnomalyReport)


class TestFactorSimilarity:
    def test_symmetric_unit_diagonal(self, fitted) -> None:
        _, result = fitted
        sim = factor_cosine_similarity(result, 0)
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)
        np.testing.assert_allclose(np.diagonal(sim), 1.0, atol=1e-9)

    def test_range(self, fitted) -> None:
        _, result = fitted
        sim = factor_cosine_similarity(result, 1)
        assert (sim >= -1.0).all() and (sim <= 1.0).all()

    def test_identical_rows_have_cosine_one(self, rng) -> None:
        core = rng.standard_normal((2, 2))
        a = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        b = np.linalg.qr(rng.standard_normal((4, 2)))[0]
        result = TuckerResult(core=core, factors=[a, b])
        sim = factor_cosine_similarity(result, 0)
        assert sim[0, 1] == pytest.approx(1.0)
        assert sim[0, 2] == pytest.approx(0.0)

    def test_zero_row_safe(self, rng) -> None:
        core = rng.standard_normal((2, 2))
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.linalg.qr(rng.standard_normal((3, 2)))[0]
        result = TuckerResult(core=core, factors=[a, b])
        sim = factor_cosine_similarity(result, 0)
        assert sim[0, 0] == 0.0 and sim[0, 1] == 0.0


class TestNearestNeighbors:
    def test_excludes_self(self, fitted) -> None:
        _, result = fitted
        idx, cos = nearest_neighbors(result, 0, index=3, k=5)
        assert 3 not in idx
        assert len(idx) == 5 and len(cos) == 5
        assert (np.diff(cos) <= 1e-12).all()  # descending

    def test_k_clipped_to_population(self, fitted) -> None:
        _, result = fitted
        idx, _ = nearest_neighbors(result, 1, index=0, k=100)
        assert len(idx) == result.shape[1] - 1

    def test_bad_index(self, fitted) -> None:
        _, result = fitted
        with pytest.raises(ShapeError):
            nearest_neighbors(result, 0, index=99)

    def test_bad_k(self, fitted) -> None:
        _, result = fitted
        with pytest.raises(ShapeError):
            nearest_neighbors(result, 0, index=0, k=0)

    def test_finds_planted_twin(self, rng) -> None:
        # Rows 0 and 7 identical: each must be the other's top neighbour.
        a = rng.standard_normal((10, 3))
        a[7] = a[0]
        core = rng.standard_normal((3, 2))
        b = np.linalg.qr(rng.standard_normal((6, 2)))[0]
        result = TuckerResult(core=core, factors=[a, b])
        idx, cos = nearest_neighbors(result, 0, index=0, k=1)
        assert idx[0] == 7
        assert cos[0] == pytest.approx(1.0)
