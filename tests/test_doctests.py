"""Execute the doctest examples embedded in docstrings.

Keeps the inline examples in module/class docstrings honest — they are the
first code a new user copies.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.core.dtucker",
    "repro.metrics.peak_memory",
    "repro.metrics.timing",
    "repro.store.store",
    # NOTE: looked up via importlib — the package re-exports a function
    # named `unfold` that shadows the module attribute.
    "repro.tensor.unfold",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_doctests(module_name: str) -> None:
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
