"""Tests for the slice-matrix view of a tensor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.tensor.slices import (
    from_slices,
    iter_slices,
    multi_to_slice_index,
    slice_count,
    slice_index_to_multi,
    to_slices,
)
from repro.tensor.unfold import unfold

shapes = st.lists(st.integers(1, 4), min_size=2, max_size=5).map(tuple)


class TestSliceCount:
    def test_order2(self) -> None:
        assert slice_count((5, 7)) == 1

    def test_order3(self) -> None:
        assert slice_count((5, 7, 9)) == 9

    def test_order5(self) -> None:
        assert slice_count((5, 7, 2, 3, 4)) == 24

    def test_order1_rejected(self) -> None:
        with pytest.raises(ShapeError):
            slice_count((5,))


class TestToSlices:
    def test_shape(self, tensor4: np.ndarray) -> None:
        assert to_slices(tensor4).shape == (5, 4, 18)

    def test_order2_single_slice(self, rng) -> None:
        m = rng.standard_normal((4, 6))
        s = to_slices(m)
        assert s.shape == (4, 6, 1)
        np.testing.assert_array_equal(s[:, :, 0], m)

    def test_slices_are_subtensors(self, tensor4: np.ndarray) -> None:
        s = to_slices(tensor4)
        # Fortran slice ordering: mode 3 varies fastest.
        l = 0
        for i4 in range(tensor4.shape[3]):
            for i3 in range(tensor4.shape[2]):
                np.testing.assert_array_equal(s[:, :, l], tensor4[:, :, i3, i4])
                l += 1

    def test_mode1_unfolding_is_hstack(self, tensor3: np.ndarray) -> None:
        s = to_slices(tensor3)
        stacked = np.hstack([s[:, :, l] for l in range(s.shape[2])])
        np.testing.assert_array_equal(stacked, unfold(tensor3, 0))

    def test_mode2_unfolding_is_hstack_transposed(self, tensor3) -> None:
        s = to_slices(tensor3)
        stacked = np.hstack([s[:, :, l].T for l in range(s.shape[2])])
        np.testing.assert_array_equal(stacked, unfold(tensor3, 1))


class TestFromSlices:
    @given(shape=shapes)
    def test_roundtrip(self, shape: tuple[int, ...]) -> None:
        x = np.random.default_rng(0).standard_normal(shape)
        np.testing.assert_array_equal(from_slices(to_slices(x), shape), x)

    def test_wrong_stack_shape(self) -> None:
        with pytest.raises(ShapeError):
            from_slices(np.zeros((3, 4, 5)), (3, 4, 6))

    def test_order2_roundtrip(self, rng) -> None:
        m = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(from_slices(to_slices(m), (3, 4)), m)


class TestIterSlices:
    def test_yields_all(self, tensor4: np.ndarray) -> None:
        slices = list(iter_slices(tensor4))
        assert len(slices) == 18
        np.testing.assert_array_equal(slices[0], tensor4[:, :, 0, 0])


class TestSliceIndexing:
    def test_roundtrip(self) -> None:
        shape = (5, 6, 3, 4, 2)
        for l in range(slice_count(shape)):
            multi = slice_index_to_multi(l, shape)
            assert multi_to_slice_index(multi, shape) == l

    def test_fortran_ordering(self) -> None:
        shape = (5, 6, 3, 4)
        assert slice_index_to_multi(0, shape) == (0, 0)
        assert slice_index_to_multi(1, shape) == (1, 0)  # mode 3 fastest
        assert slice_index_to_multi(3, shape) == (0, 1)

    def test_order2_empty_multi(self) -> None:
        assert slice_index_to_multi(0, (4, 5)) == ()
        assert multi_to_slice_index((), (4, 5)) == 0

    def test_out_of_range(self) -> None:
        with pytest.raises(ShapeError):
            slice_index_to_multi(12, (5, 6, 3, 4))
        with pytest.raises(ShapeError):
            slice_index_to_multi(-1, (5, 6, 3))

    def test_wrong_multi_length(self) -> None:
        with pytest.raises(ShapeError):
            multi_to_slice_index((1,), (5, 6, 3, 4))

    def test_matches_tensor_content(self, tensor4: np.ndarray) -> None:
        s = to_slices(tensor4)
        for l in range(s.shape[2]):
            i3, i4 = slice_index_to_multi(l, tensor4.shape)
            np.testing.assert_array_equal(s[:, :, l], tensor4[:, :, i3, i4])
