"""Tests for the DTucker estimator (all three phases end to end)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtucker import DTucker, decompose
from repro.exceptions import NotFittedError, RankError, ShapeError
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


@pytest.fixture
def noisy3(rng) -> np.ndarray:
    return random_tensor((20, 16, 12), (4, 3, 3), rng=rng, noise=0.05)


class TestFit:
    def test_basic(self, noisy3: np.ndarray) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        assert model.result_.ranks == (4, 3, 3)
        assert model.result_.error(noisy3) < 0.01

    def test_factors_orthonormal(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        for f in model.result_.factors:
            assert_orthonormal(f)

    def test_timings_cover_three_phases(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        assert set(model.timings_.phases) == {
            "approximation", "initialization", "iteration",
        }
        assert model.timings_.total > 0

    def test_history_recorded(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        assert len(model.history_) == model.n_iters_
        assert model.history_[-1] == pytest.approx(
            model.result_.error(noisy3), abs=5e-3
        )

    def test_scalar_rank(self, noisy3) -> None:
        model = DTucker(ranks=3, seed=0).fit(noisy3)
        assert model.result_.ranks == (3, 3, 3)

    def test_seed_reproducible(self, noisy3) -> None:
        a = DTucker(ranks=(4, 3, 3), seed=9).fit(noisy3)
        b = DTucker(ranks=(4, 3, 3), seed=9).fit(noisy3)
        np.testing.assert_array_equal(a.result_.core, b.result_.core)

    def test_order4(self, rng) -> None:
        x = random_tensor((10, 9, 5, 4), (2, 2, 2, 2), rng=rng, noise=0.02)
        model = DTucker(ranks=2, seed=0).fit(x)
        assert model.result_.error(x) < 0.01

    def test_order2(self, rng) -> None:
        m = rng.standard_normal((20, 4)) @ rng.standard_normal((4, 15))
        model = DTucker(ranks=(4, 4), seed=0).fit(m)
        assert model.result_.error(m) < 1e-10

    def test_exact_slice_svd_option(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), exact_slice_svd=True).fit(noisy3)
        assert model.result_.error(noisy3) < 0.01

    def test_random_init_option(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), init="random", seed=0, max_iters=60).fit(
            noisy3
        )
        assert model.result_.error(noisy3) < 0.01

    def test_invalid_init(self) -> None:
        with pytest.raises(ShapeError):
            DTucker(ranks=3, init="bogus")

    def test_rank_exceeds_mode(self, noisy3) -> None:
        with pytest.raises(RankError):
            DTucker(ranks=(25, 3, 3)).fit(noisy3)

    def test_explicit_slice_rank(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), slice_rank=8, seed=0).fit(noisy3)
        assert model.slice_svd_.rank == 8

    def test_slice_rank_too_small(self, noisy3) -> None:
        with pytest.raises(RankError):
            DTucker(ranks=(4, 3, 3), slice_rank=2).fit(noisy3)

    def test_rejects_nan(self) -> None:
        x = np.ones((4, 4, 4))
        x[0, 0, 0] = np.nan
        with pytest.raises(ShapeError):
            DTucker(ranks=2).fit(x)


class TestSliceModes:
    def test_explicit_pair(self, rng) -> None:
        # Mode layout (time, h, w): slice over the two spatial modes.
        x = random_tensor((12, 20, 16), (3, 4, 3), rng=rng, noise=0.02)
        model = DTucker(ranks=(3, 4, 3), slice_modes=(1, 2), seed=0).fit(x)
        assert model.permutation_ == (1, 2, 0)
        assert model.result_.error(x) < 0.01
        assert model.result_.shape == (12, 20, 16)

    def test_largest(self, rng) -> None:
        x = random_tensor((6, 30, 25), (2, 4, 4), rng=rng, noise=0.02)
        model = DTucker(ranks=(2, 4, 4), slice_modes="largest", seed=0).fit(x)
        assert model.permutation_[:2] == (1, 2)
        assert model.result_.error(x) < 0.01

    def test_result_in_original_order(self, rng) -> None:
        x = random_tensor((6, 30, 25), (2, 4, 4), rng=rng, noise=0.0)
        model = DTucker(ranks=(2, 4, 4), slice_modes="largest", seed=0).fit(x)
        assert [f.shape[0] for f in model.result_.factors] == [6, 30, 25]
        assert model.result_.ranks == (2, 4, 4)

    def test_invalid_pair(self) -> None:
        with pytest.raises(ShapeError):
            DTucker(ranks=2, slice_modes=(0, 0)).fit(np.zeros((3, 3, 3)) + 1.0)

    def test_invalid_string(self) -> None:
        with pytest.raises(ShapeError):
            DTucker(ranks=2, slice_modes="biggest").fit(np.ones((3, 3, 3)))


class TestRefit:
    def test_lower_rank_reuses_compression(self, rng) -> None:
        x = random_tensor((20, 16, 12), (4, 3, 3), rng=rng, noise=0.0)
        model = DTucker(ranks=(4, 3, 3), slice_rank=6, seed=0).fit(x)
        small = model.refit(ranks=(2, 2, 2))
        assert small.ranks == (2, 2, 2)
        # Self-consistent: refit at the original ranks reproduces the error.
        again = model.refit()
        assert again.error(x) == pytest.approx(model.result_.error(x), abs=1e-8)

    def test_refit_rank_exceeds_slice_rank(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        with pytest.raises(RankError):
            model.refit(ranks=(10, 10, 3))

    def test_refit_before_fit(self) -> None:
        with pytest.raises(NotFittedError):
            DTucker(ranks=3).refit()

    def test_refit_with_permutation(self, rng) -> None:
        x = random_tensor((6, 30, 25), (2, 4, 4), rng=rng, noise=0.0)
        model = DTucker(
            ranks=(2, 4, 4), slice_modes="largest", slice_rank=6, seed=0
        ).fit(x)
        r = model.refit(ranks=(2, 3, 3))
        assert r.ranks == (2, 3, 3)
        assert r.shape == (6, 30, 25)


class TestAccessors:
    def test_not_fitted_errors(self) -> None:
        model = DTucker(ranks=3)
        with pytest.raises(NotFittedError):
            _ = model.compression_ratio_
        with pytest.raises(NotFittedError):
            model.reconstruct()

    def test_reconstruct(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        np.testing.assert_allclose(
            model.reconstruct(), model.result_.reconstruct()
        )

    def test_compression_ratio_positive(self, noisy3) -> None:
        model = DTucker(ranks=(4, 3, 3), seed=0).fit(noisy3)
        assert model.compression_ratio_ > 1.0


class TestDecompose:
    def test_functional_api(self, noisy3) -> None:
        model = decompose(noisy3, (4, 3, 3), seed=0)
        assert isinstance(model, DTucker)
        assert model.result_.error(noisy3) < 0.01
