"""Tests for the randomized Tucker (RTD) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rtd import rtd
from repro.exceptions import ShapeError
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


class TestRtd:
    def test_exact_on_lowrank(self, lowrank3) -> None:
        fit = rtd(lowrank3, (3, 2, 2), seed=0)
        assert fit.result.error(lowrank3) < 1e-8

    def test_orthonormal(self, lowrank3) -> None:
        for f in rtd(lowrank3, (3, 2, 2), seed=0).result.factors:
            assert_orthonormal(f)

    def test_one_pass(self, lowrank3) -> None:
        fit = rtd(lowrank3, (3, 2, 2), seed=0)
        assert fit.n_iters == 0 and fit.converged

    def test_close_to_sthosvd_on_noise(self, rng) -> None:
        from repro.baselines.hosvd import st_hosvd

        x = random_tensor((16, 14, 12), (3, 3, 3), rng=rng, noise=0.2)
        e_det = st_hosvd(x, (3, 3, 3)).result.error(x)
        e_rand = rtd(x, (3, 3, 3), power_iterations=2, seed=0).result.error(x)
        assert e_rand <= 1.2 * e_det + 1e-12

    def test_seed_reproducible(self, lowrank3) -> None:
        a = rtd(lowrank3, (3, 2, 2), seed=4)
        b = rtd(lowrank3, (3, 2, 2), seed=4)
        np.testing.assert_array_equal(a.result.core, b.result.core)

    def test_mode_order_override(self, lowrank3) -> None:
        fit = rtd(lowrank3, (3, 2, 2), mode_order=[2, 1, 0], seed=0)
        assert fit.result.error(lowrank3) < 1e-8

    def test_invalid_mode_order(self, lowrank3) -> None:
        with pytest.raises(ShapeError):
            rtd(lowrank3, (3, 2, 2), mode_order=[0, 1])

    def test_order4(self, rng) -> None:
        x = random_tensor((8, 7, 5, 4), (2, 2, 2, 2), rng=rng, noise=0.01)
        assert rtd(x, 2, seed=0).result.error(x) < 0.01
