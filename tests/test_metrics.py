"""Tests for timing, memory accounting, and metric helpers."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.metrics.memory import (
    array_nbytes,
    mach_nbytes,
    sketch_nbytes,
    slice_svd_nbytes,
    tensor_nbytes,
    total_nbytes,
    tucker_nbytes,
)
from repro.metrics.timing import PhaseTimings, Timer
from repro.metrics.error import tucker_reconstruction_error
from repro.tensor.random import random_tucker


class TestTimer:
    def test_measures_elapsed(self) -> None:
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.seconds < 1.0

    def test_zero_before_exit(self) -> None:
        t = Timer()
        assert t.seconds == 0.0


class TestPhaseTimings:
    def test_add_and_total(self) -> None:
        pt = PhaseTimings()
        pt.add("a", 1.0)
        pt.add("b", 2.0)
        assert pt.total == 3.0
        assert pt["a"] == 1.0
        assert "b" in pt

    def test_accumulates_same_phase(self) -> None:
        pt = PhaseTimings()
        pt.add("a", 1.0)
        pt.add("a", 0.5)
        assert pt["a"] == 1.5

    def test_measure_context(self) -> None:
        pt = PhaseTimings()
        with pt.measure("work"):
            time.sleep(0.005)
        assert pt["work"] > 0

    def test_summary_format(self) -> None:
        pt = PhaseTimings()
        pt.add("x", 0.25)
        s = pt.summary()
        assert "x=0.2500s" in s and "total=0.2500s" in s

    def test_iteration_order(self) -> None:
        pt = PhaseTimings()
        pt.add("z", 1.0)
        pt.add("a", 2.0)
        assert [k for k, _ in pt] == ["z", "a"]


class TestMemoryFormulas:
    def test_tensor_nbytes(self) -> None:
        assert tensor_nbytes((10, 20, 30)) == 6000 * 8
        assert tensor_nbytes((10, 20), "float32") == 200 * 4

    def test_array_nbytes(self, rng) -> None:
        a, b = rng.standard_normal(5), rng.standard_normal((2, 3))
        assert array_nbytes(a, b) == a.nbytes + b.nbytes
        assert total_nbytes([a, b]) == a.nbytes + b.nbytes

    def test_tucker_nbytes(self) -> None:
        # factors: 10*2 + 20*3 + 30*4 = 200; core: 24 -> 224 numbers.
        assert tucker_nbytes((10, 20, 30), (2, 3, 4)) == 224 * 8

    def test_slice_svd_formula(self) -> None:
        # (I1 + I2 + 1) * K * L numbers.
        assert slice_svd_nbytes((10, 20, 5, 2), 3) == (31 * 3 * 10) * 8

    def test_slice_svd_matches_object(self, lowrank3) -> None:
        from repro.core.slice_svd import compress

        ss = compress(lowrank3, 3, rng=0)
        assert ss.nbytes == slice_svd_nbytes(lowrank3.shape, 3)

    def test_slice_svd_order1_rejected(self) -> None:
        with pytest.raises(ValueError):
            slice_svd_nbytes((5,), 2)

    def test_mach_nbytes_scales_with_p(self) -> None:
        small = mach_nbytes((100, 100, 100), 0.01)
        large = mach_nbytes((100, 100, 100), 0.1)
        assert large == pytest.approx(10 * small, rel=1e-6)

    def test_mach_per_entry_cost(self) -> None:
        # value (8B) + 3 indices (24B) = 32B per kept entry.
        assert mach_nbytes((10, 10, 10), 1.0) == 1000 * 32

    def test_sketch_nbytes(self) -> None:
        # per mode s1*I_n, plus s2.
        got = sketch_nbytes((10, 20, 30), (2, 2, 2), (100, 400))
        assert got == (100 * 60 + 400) * 8


class TestTuckerReconstructionError:
    def test_zero_for_exact(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        from repro.tensor.products import tucker_to_tensor

        x = tucker_to_tensor(core, factors)
        assert tucker_reconstruction_error(x, core, factors) < 1e-14

    def test_positive_for_mismatch(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        x = rng.standard_normal((8, 7, 6))
        assert tucker_reconstruction_error(x, core, factors) > 0.1


class TestMeasurePeak:
    def test_returns_result(self) -> None:
        from repro.metrics.peak_memory import measure_peak

        value, peak = measure_peak(lambda: 42)
        assert value == 42
        assert peak >= 0

    def test_traces_numpy_allocation(self) -> None:
        from repro.metrics.peak_memory import measure_peak

        _, peak = measure_peak(lambda: np.zeros(500_000))
        assert peak >= 4_000_000  # 500k float64

    def test_baseline_excluded(self) -> None:
        from repro.metrics.peak_memory import measure_peak

        big = np.zeros(500_000)  # allocated before measurement
        _, peak = measure_peak(lambda: big.sum())
        assert peak < 1_000_000

    def test_transient_peak_captured(self) -> None:
        from repro.metrics.peak_memory import measure_peak

        def churn() -> float:
            tmp = np.zeros(400_000)  # freed before return
            return float(tmp.sum())

        _, peak = measure_peak(churn)
        assert peak >= 3_000_000

    def test_exception_stops_tracing(self) -> None:
        import tracemalloc

        from repro.metrics.peak_memory import measure_peak

        def boom() -> None:
            raise ValueError("x")

        with pytest.raises(ValueError):
            measure_peak(boom)
        assert not tracemalloc.is_tracing()
