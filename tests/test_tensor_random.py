"""Tests for random tensor and Tucker-model generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RankError
from repro.tensor.random import (
    default_rng,
    random_orthonormal,
    random_tensor,
    random_tucker,
)
from tests.conftest import assert_orthonormal


class TestDefaultRng:
    def test_passthrough(self) -> None:
        g = np.random.default_rng(3)
        assert default_rng(g) is g

    def test_seed_reproducible(self) -> None:
        a = default_rng(5).standard_normal(4)
        b = default_rng(5).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self) -> None:
        assert isinstance(default_rng(None), np.random.Generator)


class TestRandomOrthonormal:
    def test_columns_orthonormal(self) -> None:
        assert_orthonormal(random_orthonormal(10, 4, rng=0))

    def test_square(self) -> None:
        q = random_orthonormal(5, 5, rng=0)
        assert_orthonormal(q)
        assert abs(abs(np.linalg.det(q)) - 1.0) < 1e-10

    def test_too_many_columns(self) -> None:
        with pytest.raises(RankError):
            random_orthonormal(3, 5)


class TestRandomTucker:
    def test_shapes(self) -> None:
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng=0)
        assert core.shape == (3, 2, 2)
        assert [f.shape for f in factors] == [(6, 3), (5, 2), (4, 2)]

    def test_factors_orthonormal(self) -> None:
        _, factors = random_tucker((6, 5, 4), (3, 2, 2), rng=0)
        for f in factors:
            assert_orthonormal(f)

    def test_scalar_rank_broadcast(self) -> None:
        core, _ = random_tucker((6, 5, 4), 2, rng=0)
        assert core.shape == (2, 2, 2)

    def test_core_scale(self) -> None:
        c1, _ = random_tucker((6, 5), (2, 2), rng=0, core_scale=1.0)
        c2, _ = random_tucker((6, 5), (2, 2), rng=0, core_scale=3.0)
        np.testing.assert_allclose(c2, 3.0 * c1)

    def test_rank_too_large(self) -> None:
        with pytest.raises(RankError):
            random_tucker((4, 5), (5, 2))


class TestRandomTensor:
    def test_exact_rank_when_noiseless(self) -> None:
        x = random_tensor((10, 9, 8), (3, 2, 2), rng=0, noise=0.0)
        from repro.tensor.unfold import unfold

        for n, r in enumerate((3, 2, 2)):
            s = np.linalg.svd(unfold(x, n), compute_uv=False)
            assert s[r] < 1e-10 * s[0]

    def test_noise_level(self) -> None:
        x0 = random_tensor((20, 20, 20), (2, 2, 2), rng=7, noise=0.0)
        x1 = random_tensor((20, 20, 20), (2, 2, 2), rng=7, noise=0.5)
        rms_signal = np.sqrt(np.mean(x0**2))
        rms_noise = np.sqrt(np.mean((x1 - x0) ** 2))
        assert rms_noise == pytest.approx(0.5 * rms_signal, rel=0.1)

    def test_reproducible(self) -> None:
        a = random_tensor((5, 5, 5), 2, rng=11, noise=0.1)
        b = random_tensor((5, 5, 5), 2, rng=11, noise=0.1)
        np.testing.assert_array_equal(a, b)
