"""Namespace-purity tests: ``linalg/`` and ``tensor/`` under array-api-strict.

``array_api_strict`` is the reference implementation of the array-API
standard: it rejects every NumPy-ism (no ``einsum``, no ``order=`` reshape,
no implicit host round-trips, no mixing with ``np.ndarray``).  Running the
compute layers through it proves the facade's generic branches touch only
standard operations — the property that makes torch/CuPy support a matter
of capability wiring, not per-function porting.

The whole module is skipped when the package is absent (it is an optional
CI extra, never a runtime dependency).
"""

from __future__ import annotations

import numpy as np
import pytest

strict_xp = pytest.importorskip("array_api_strict")

from repro.engine.array_api import array_module_of, get_module  # noqa: E402
from repro.linalg.rsvd import batched_rsvd, batched_svd_via_gram  # noqa: E402
from repro.linalg.svd import (  # noqa: E402
    leading_left_singular_vectors,
    robust_svd,
    sign_fix,
    truncated_svd,
)
from repro.tensor.norms import core_based_error  # noqa: E402
from repro.tensor.products import mode_product, multi_mode_product  # noqa: E402
from repro.tensor.unfold import fold, unfold  # noqa: E402


@pytest.fixture
def am():
    return get_module("array-api-strict")


def _pair(shape, seed=0):
    """A host array and its strict-namespace twin."""
    host = np.random.default_rng(seed).standard_normal(shape)
    return host, strict_xp.asarray(host)


class TestDispatch:
    def test_strict_arrays_select_the_strict_module(self, am) -> None:
        _, dev = _pair((3, 4))
        assert array_module_of(dev) is am
        assert not am.is_numpy

    def test_round_trip(self, am) -> None:
        host, dev = _pair((5, 6))
        np.testing.assert_array_equal(am.from_device(dev), host)


class TestLinalgPurity:
    def test_sign_fix(self, am) -> None:
        host, dev = _pair((8, 4), seed=1)
        u_h, _ = sign_fix(host.copy())
        u_d, _ = sign_fix(dev)
        np.testing.assert_allclose(am.from_device(u_d), u_h, atol=1e-12)

    def test_truncated_svd(self, am) -> None:
        host, dev = _pair((12, 9), seed=2)
        u_h, s_h, vt_h = truncated_svd(host, 4)
        u_d, s_d, vt_d = truncated_svd(dev, 4)
        np.testing.assert_allclose(am.from_device(s_d), s_h, atol=1e-10)
        np.testing.assert_allclose(am.from_device(u_d), u_h, atol=1e-9)
        np.testing.assert_allclose(am.from_device(vt_d), vt_h, atol=1e-9)

    def test_leading_left_singular_vectors(self, am) -> None:
        host, dev = _pair((10, 14), seed=3)
        a_h = leading_left_singular_vectors(host, 3)
        a_d = leading_left_singular_vectors(dev, 3)
        np.testing.assert_allclose(am.from_device(a_d), a_h, atol=1e-9)

    def test_robust_svd(self, am) -> None:
        host, dev = _pair((7, 5), seed=4)
        u_h, s_h, vt_h = robust_svd(host)
        u_d, s_d, vt_d = robust_svd(dev)
        np.testing.assert_allclose(am.from_device(s_d), s_h, atol=1e-10)

    def test_batched_rsvd(self, am) -> None:
        host, dev = _pair((3, 16, 12), seed=5)
        sketch_h = np.random.default_rng(99).standard_normal((3, 16, 6))
        u_h, s_h, vt_h = batched_rsvd(host, 4, sketch=sketch_h)
        u_d, s_d, vt_d = batched_rsvd(dev, 4, sketch=strict_xp.asarray(sketch_h))
        np.testing.assert_allclose(am.from_device(s_d), s_h, atol=1e-9)
        np.testing.assert_allclose(am.from_device(u_d), u_h, atol=1e-8)
        np.testing.assert_allclose(am.from_device(vt_d), vt_h, atol=1e-8)

    def test_batched_svd_via_gram(self, am) -> None:
        host, dev = _pair((3, 10, 6), seed=6)
        u_h, s_h, vt_h = batched_svd_via_gram(host, 4)
        u_d, s_d, vt_d = batched_svd_via_gram(dev, 4)
        np.testing.assert_allclose(am.from_device(s_d), s_h, atol=1e-9)
        np.testing.assert_allclose(am.from_device(u_d), u_h, atol=1e-7)
        np.testing.assert_allclose(am.from_device(vt_d), vt_h, atol=1e-7)


class TestTensorPurity:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_unfold_fold_round_trip(self, am, mode) -> None:
        host, dev = _pair((4, 5, 6), seed=7)
        m_h = unfold(host, mode)
        m_d = unfold(dev, mode)
        np.testing.assert_array_equal(am.from_device(m_d), m_h)
        back = fold(m_d, mode, (4, 5, 6))
        np.testing.assert_array_equal(am.from_device(back), host)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_mode_product(self, am, mode) -> None:
        host, dev = _pair((4, 5, 6), seed=8)
        mat = np.random.default_rng(9).standard_normal((3, (4, 5, 6)[mode]))
        want = mode_product(host, mat, mode)
        got = mode_product(dev, strict_xp.asarray(mat), mode)
        np.testing.assert_allclose(am.from_device(got), want, atol=1e-12)

    def test_multi_mode_product(self, am) -> None:
        host, dev = _pair((4, 5, 6), seed=10)
        mats = [
            np.random.default_rng(11 + m).standard_normal((2, d))
            for m, d in enumerate((4, 5, 6))
        ]
        want = multi_mode_product(host, mats)
        got = multi_mode_product(dev, [strict_xp.asarray(m) for m in mats])
        np.testing.assert_allclose(am.from_device(got), want, atol=1e-12)

    def test_core_based_error(self, am) -> None:
        host, dev = _pair((3, 3, 2), seed=12)
        norm_sq = float(np.vdot(host, host)) * 2.0
        want = core_based_error(norm_sq, host)
        got = core_based_error(norm_sq, dev)
        assert got == pytest.approx(want, rel=1e-12)
