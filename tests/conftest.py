"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tensor3(rng: np.random.Generator) -> np.ndarray:
    """A generic dense order-3 tensor."""
    return rng.standard_normal((7, 5, 6))


@pytest.fixture
def tensor4(rng: np.random.Generator) -> np.ndarray:
    """A generic dense order-4 tensor."""
    return rng.standard_normal((5, 4, 3, 6))


@pytest.fixture
def lowrank3(rng: np.random.Generator) -> np.ndarray:
    """Exactly rank-(3,2,2) order-3 tensor of shape (12, 10, 8)."""
    from repro.tensor.random import random_tensor

    return random_tensor((12, 10, 8), (3, 2, 2), rng=rng, noise=0.0)


def assert_orthonormal(a: np.ndarray, *, atol: float = 1e-8) -> None:
    """Assert that ``a`` has orthonormal columns."""
    gram = a.T @ a
    np.testing.assert_allclose(gram, np.eye(a.shape[1]), atol=atol)
