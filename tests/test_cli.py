"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import _parse_ranks, main
from repro.tensor.random import random_tensor


@pytest.fixture
def tensor_file(tmp_path, rng):
    x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.05)
    path = tmp_path / "x.npy"
    np.save(path, x)
    return path


class TestParseRanks:
    def test_single(self) -> None:
        assert _parse_ranks("7") == 7

    def test_tuple(self) -> None:
        assert _parse_ranks("3,4,5") == (3, 4, 5)

    def test_spaces(self) -> None:
        assert _parse_ranks("3, 4, 5") == (3, 4, 5)


class TestDatasetsCommand:
    def test_lists_all(self, capsys) -> None:
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("boats", "stock", "airquality", "hsi", "synthetic"):
            assert name in out


class TestGenerateCommand:
    def test_writes_npy(self, tmp_path, capsys) -> None:
        out = tmp_path / "boats.npy"
        assert main(
            ["generate", "boats", "--scale", "tiny", "-o", str(out)]
        ) == 0
        x = np.load(out)
        assert x.shape == (24, 18, 40)


class TestDecomposeCommand:
    def test_basic(self, tensor_file, capsys) -> None:
        assert main(["decompose", str(tensor_file), "--ranks", "3,3,3"]) == 0
        out = capsys.readouterr().out
        assert "method=dtucker" in out and "error" in out

    def test_other_method(self, tensor_file, capsys) -> None:
        assert main(
            ["decompose", str(tensor_file), "--ranks", "3", "--method", "st_hosvd"]
        ) == 0
        assert "method=st_hosvd" in capsys.readouterr().out

    def test_unknown_method(self, tensor_file) -> None:
        assert main(
            ["decompose", str(tensor_file), "--ranks", "3", "--method", "nope"]
        ) == 2

    def test_saves_artifacts(self, tensor_file, tmp_path, capsys) -> None:
        result_path = tmp_path / "result.npz"
        comp_path = tmp_path / "compressed.npz"
        code = main(
            [
                "decompose", str(tensor_file), "--ranks", "3,3,3",
                "-o", str(result_path), "--save-compressed", str(comp_path),
            ]
        )
        assert code == 0
        from repro.io import load_slice_svd, load_tucker

        result = load_tucker(result_path)
        assert result.ranks == (3, 3, 3)
        ssvd = load_slice_svd(comp_path)
        assert ssvd.shape == (14, 12, 10)

    def test_output_requires_dtucker(self, tensor_file, tmp_path) -> None:
        assert main(
            [
                "decompose", str(tensor_file), "--ranks", "3",
                "--method", "hosvd", "-o", str(tmp_path / "r.npz"),
            ]
        ) == 2

    @pytest.mark.parametrize("strategy", ["auto", "gram", "exact"])
    def test_strategy_flag(self, tensor_file, strategy, capsys) -> None:
        assert main(
            [
                "decompose", str(tensor_file), "--ranks", "3,3,3",
                "--strategy", strategy,
            ]
        ) == 0
        assert "error" in capsys.readouterr().out

    def test_precision_flag(self, tensor_file, capsys) -> None:
        assert main(
            [
                "decompose", str(tensor_file), "--ranks", "3,3,3",
                "--precision", "float32",
            ]
        ) == 0
        assert "error" in capsys.readouterr().out

    def test_invalid_strategy_rejected(self, tensor_file, capsys) -> None:
        with pytest.raises(SystemExit):
            main(
                [
                    "decompose", str(tensor_file), "--ranks", "3",
                    "--strategy", "fastest",
                ]
            )

    def test_trace_prints_planner_line(self, tensor_file, capsys) -> None:
        assert main(
            [
                "decompose", str(tensor_file), "--ranks", "3,3,3",
                "--strategy", "auto", "--trace",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "planner:" in out
        assert "sketch_draws=" in out

    def test_dataset_uri(self, capsys) -> None:
        assert main(
            ["decompose", "dataset:synthetic:tiny", "--ranks", "3"]
        ) == 0


class TestCompareCommand:
    def test_subset(self, tensor_file, capsys) -> None:
        assert main(
            [
                "compare", str(tensor_file), "--ranks", "3",
                "--methods", "dtucker,st_hosvd",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dtucker" in out and "st_hosvd" in out

    def test_unknown_method(self, tensor_file) -> None:
        assert main(
            ["compare", str(tensor_file), "--ranks", "3", "--methods", "bogus"]
        ) == 2


class TestSuggestRanksCommand:
    def test_prints_suggestion(self, tensor_file, capsys) -> None:
        assert main(
            ["suggest-ranks", str(tensor_file), "--target-error", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "suggested" in out and "estimated err" in out

    def test_max_rank(self, tensor_file, capsys) -> None:
        assert main(
            [
                "suggest-ranks", str(tensor_file),
                "--target-error", "0.0001", "--max-rank", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "(2, 2, 2)" in out


class TestErrorHandling:
    def test_unknown_dataset_clean_exit(self, capsys) -> None:
        code = main(["generate", "nope", "-o", "/tmp/never.npy"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_clean_exit(self, capsys) -> None:
        code = main(["decompose", "/no/such/file.npy", "--ranks", "3"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_ranks_clean_exit(self, tensor_file, capsys) -> None:
        code = main(["decompose", str(tensor_file), "--ranks", "99,99,99"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compress_rank_too_large_clean_exit(self, tensor_file, tmp_path, capsys) -> None:
        code = main(
            ["compress", str(tensor_file), "--rank", "99", "-o", str(tmp_path / "c")]
        )
        assert code == 1


class TestStreamCommand:
    @pytest.fixture
    def block_dir(self, tmp_path, rng):
        x = random_tensor((16, 12, 15), (3, 3, 4), rng=rng, noise=0.02)
        root = tmp_path / "blocks"
        root.mkdir()
        for i, t0 in enumerate(range(0, 15, 5)):
            np.save(root / f"block_{i:03d}.npy", x[..., t0 : t0 + 5])
        return root

    def test_directory_ingest(self, block_dir, capsys) -> None:
        assert main(["stream", str(block_dir), "--ranks", "3,3,4"]) == 0
        out = capsys.readouterr().out
        assert "streaming 3 blocks (update=incremental)" in out
        assert "ingested 3 blocks, 15 steps total" in out
        assert "projection reuse:" in out

    def test_refit_mode_has_no_reuse_line(self, block_dir, capsys) -> None:
        assert main(
            ["stream", str(block_dir), "--ranks", "3,3,4", "--update", "refit"]
        ) == 0
        out = capsys.readouterr().out
        assert "update=refit" in out
        assert "projection reuse" not in out

    def test_window_and_decay_flags(self, block_dir, capsys) -> None:
        assert main(
            [
                "stream",
                str(block_dir),
                "--ranks",
                "3,3,4",
                "--window",
                "8",
                "--decay",
                "0.9",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "window=8" in out and "decay=0.9" in out
        assert "extent 8" in out  # the window caps the live extent

    def test_save_then_inspect(self, block_dir, tmp_path, capsys) -> None:
        store = tmp_path / "store"
        assert main(
            [
                "stream",
                str(block_dir),
                "--ranks",
                "3,3,4",
                "--save",
                str(store),
            ]
        ) == 0
        assert "store  :" in capsys.readouterr().out
        assert (store / "streaming" / "state.json").exists()
        assert main(["inspect", str(store)]) == 0

    def test_stdin_source(self, block_dir, capsys, monkeypatch) -> None:
        import io

        paths = "\n".join(str(p) for p in sorted(block_dir.glob("*.npy")))
        monkeypatch.setattr("sys.stdin", io.StringIO(paths + "\n"))
        assert main(["stream", "-", "--ranks", "3,3,4"]) == 0
        assert "ingested 3 blocks" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path) -> None:
        with pytest.raises(SystemExit):
            main(["stream", str(tmp_path / "nope"), "--ranks", "3,3,4"])

    def test_empty_directory(self, tmp_path) -> None:
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["stream", str(empty), "--ranks", "3,3,4"])
