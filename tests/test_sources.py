"""Tests for the data-source layer and the unified fit pipeline."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import (
    BlockSource,
    DenseSource,
    DTucker,
    DTuckerConfig,
    FitPipeline,
    NpySource,
    SliceSource,
    SparseSource,
    compress,
    compress_npy,
    compress_source,
)
from repro.core.fit_pipeline import resolve_slice_rank
from repro.core.sources import (
    _gathered_slice_loop,
    batched_slice_view,
    clear_memmap_cache,
)
from repro.core.sparse_dtucker import compress_sparse
from repro.core.streaming import StreamingDTucker
from repro.exceptions import RankError, ShapeError
from repro.kernels import KernelStats
from repro.sparse import SparseTensor
from repro.tensor.random import random_tensor
from repro.tensor.slices import to_slices

BACKENDS = ["serial", "thread", "process"]


@pytest.fixture
def tensor(rng):
    return random_tensor((18, 14, 5, 4), (3, 3, 2, 2), rng=rng, noise=0.05)


@pytest.fixture
def npy_path(tmp_path, tensor):
    path = tmp_path / "x.npy"
    np.save(path, tensor)
    return path


def _stack(x):
    return np.moveaxis(to_slices(x), 2, 0)


class TestProtocol:
    def test_adapters_satisfy_protocol(self, tensor, npy_path) -> None:
        sparse = SparseTensor.from_dense(np.where(np.abs(tensor) > 1, tensor, 0.0))
        for src in (
            DenseSource(tensor),
            NpySource(npy_path),
            SparseSource(sparse),
            BlockSource([tensor]),
        ):
            assert isinstance(src, SliceSource)
            assert src.shape == tensor.shape
            assert src.slice_count == 20
            batch = src.read_batch(2, 7)
            assert batch.shape == (5, 18, 14)

    def test_descriptors_pickle_and_reopen(self, tensor, npy_path) -> None:
        sparse = SparseTensor.from_dense(np.where(np.abs(tensor) > 1, tensor, 0.0))
        for src in (
            DenseSource(tensor),
            NpySource(npy_path),
            SparseSource(sparse),
            BlockSource([tensor[..., :2], tensor[..., 2:]]),
        ):
            reopened = pickle.loads(pickle.dumps(src.descriptor())).open()
            assert reopened.shape == src.shape
            np.testing.assert_array_equal(
                reopened.read_batch(0, 3), src.read_batch(0, 3)
            )

    def test_npy_source_rejects_vectors(self, tmp_path) -> None:
        path = tmp_path / "v.npy"
        np.save(path, np.arange(5.0))
        with pytest.raises(ShapeError):
            NpySource(path)

    def test_sparse_source_rejects_dense(self, tensor) -> None:
        with pytest.raises(ShapeError):
            SparseSource(tensor)

    def test_block_source_rejects_mismatched_blocks(self, tensor) -> None:
        with pytest.raises(ShapeError):
            BlockSource([tensor, tensor[:, :-1]])
        with pytest.raises(ShapeError):
            BlockSource([])

    def test_rank_bound_error(self, tensor) -> None:
        with pytest.raises(RankError, match="exceeds min"):
            compress_source(DenseSource(tensor), 15)


class TestBatchedGather:
    """The fancy-index gather must be bit-identical to the per-slice loop."""

    @pytest.mark.parametrize(
        "shape",
        [(6, 5, 7), (5, 4, 3, 2), (4, 3, 2, 2, 3)],
    )
    def test_matches_loop_bitwise(self, rng, shape) -> None:
        x = rng.standard_normal(shape)
        count = int(np.prod(shape[2:]))
        for start, stop in [(0, count), (1, count - 1), (3, 4), (0, 1)]:
            if not 0 <= start < stop <= count:
                continue
            fast = batched_slice_view(x, start, stop)
            slow = _gathered_slice_loop(x, start, stop)
            np.testing.assert_array_equal(fast, slow)
            assert fast.flags["C_CONTIGUOUS"]
            assert fast.dtype == np.float64

    def test_matches_loop_on_memmap(self, rng, tmp_path) -> None:
        x = rng.standard_normal((5, 4, 3, 4))
        path = tmp_path / "x.npy"
        np.save(path, x)
        mm = np.load(path, mmap_mode="r")
        np.testing.assert_array_equal(
            batched_slice_view(mm, 2, 9), _gathered_slice_loop(x, 2, 9)
        )

    def test_matches_to_slices(self, rng) -> None:
        x = rng.standard_normal((6, 5, 4, 3))
        np.testing.assert_array_equal(
            batched_slice_view(x, 0, 12), _stack(x)
        )

    def test_non_ndarray_falls_back_to_loop(self, rng) -> None:
        class ArrayLike:
            def __init__(self, a):
                self._a = a
                self.shape = a.shape

            def __getitem__(self, key):
                return self._a[key]

        x = rng.standard_normal((4, 3, 5))
        np.testing.assert_array_equal(
            batched_slice_view(ArrayLike(x), 1, 4),
            batched_slice_view(x, 1, 4),
        )


class TestMemmapHandleCache:
    """Satellite: one cached read-only handle per file, not one per batch."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_one_open_across_batches(
        self, npy_path, tensor, monkeypatch, backend
    ) -> None:
        clear_memmap_cache()
        opens = []
        real_load = np.load

        def counting_load(path, *args, **kwargs):
            if kwargs.get("mmap_mode"):
                opens.append(str(path))
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(np, "load", counting_load)
        cfg = DTuckerConfig(seed=0, backend=backend, n_workers=2)
        ssvd = compress_npy(npy_path, 3, batch_slices=3, config=cfg)
        assert ssvd.num_slices == 20
        # 7 batches, 1 open: the probe populates the cache, batches hit it.
        assert len(opens) == 1
        clear_memmap_cache()

    def test_lru_cap_bounds_handles_and_counts_evictions(
        self, tmp_path, rng, monkeypatch
    ) -> None:
        """Satellite: the handle cache is LRU-bounded (fd-exhaustion guard).

        With a cap of 2, opening three distinct files must evict the
        least-recently-used handle, keep the cache at the cap, and tally
        the eviction; re-reading the evicted file is a fresh miss.
        """
        from repro.core.sources import memmap_cache_stats

        monkeypatch.setenv("REPRO_MEMMAP_HANDLES", "2")
        clear_memmap_cache()
        paths = []
        for i in range(3):
            path = tmp_path / f"m{i}.npy"
            np.save(path, rng.standard_normal((4, 3, 2)))
            paths.append(path)
        sources = [NpySource(p) for p in paths]  # 3 misses, 1 eviction
        stats = memmap_cache_stats()
        assert stats["capacity"] == 2
        assert stats["size"] == 2
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
        sources[0].read_batch(0, 2)  # evicted: re-open, evict another
        stats = memmap_cache_stats()
        assert stats["misses"] == 4
        assert stats["evictions"] == 2
        assert stats["size"] == 2
        sources[0].read_batch(0, 2)  # hot again: a hit, no new handle
        assert memmap_cache_stats()["hits"] >= 1
        clear_memmap_cache()
        assert memmap_cache_stats()["size"] == 0
        assert memmap_cache_stats()["evictions"] == 0

    def test_rewritten_file_is_remapped(self, tmp_path, rng) -> None:
        clear_memmap_cache()
        path = tmp_path / "x.npy"
        a = rng.standard_normal((6, 5, 4))
        np.save(path, a)
        first = NpySource(path).read_batch(0, 4)
        np.testing.assert_array_equal(first, _stack(a)[:4])
        b = rng.standard_normal((6, 5, 4))
        np.save(path, b)
        import os

        os.utime(path, ns=(1, 1))  # force a distinct mtime_ns
        second = NpySource(path).read_batch(0, 4)
        np.testing.assert_array_equal(second, _stack(b)[:4])
        clear_memmap_cache()


class TestCrossSourceParity:
    """Same tensor through different sources → identical factors."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dense_npy_sparse_gram_bitwise(
        self, tensor, npy_path, backend
    ) -> None:
        # The gram method is sketch-free, so factors cannot depend on the
        # batching; the factor kernels contiguize internally, so they cannot
        # depend on the source's memory layout either.  Factors must agree
        # bit for bit; the per-slice norm accumulation runs on each source's
        # native layout, so norms agree only to rounding.
        cfg = DTuckerConfig(seed=0, strategy="gram", backend=backend, n_workers=2)
        sparse = SparseTensor.from_dense(tensor)
        results = [
            compress_source(DenseSource(tensor), 3, config=cfg),
            compress_source(NpySource(npy_path), 3, batch_slices=6, config=cfg),
            compress_source(SparseSource(sparse), 3, batch_slices=6, config=cfg),
        ]
        ref = results[0]
        for other in results[1:]:
            np.testing.assert_array_equal(other.u, ref.u)
            np.testing.assert_array_equal(other.s, ref.s)
            np.testing.assert_array_equal(other.vt, ref.vt)
            np.testing.assert_allclose(
                other.slice_norms_squared, ref.slice_norms_squared, rtol=1e-12
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dense_npy_block_rsvd_bitwise(
        self, tensor, npy_path, backend
    ) -> None:
        # One whole-tensor batch everywhere → one omega draw from the same
        # stream position → identical sketches.
        cfg = DTuckerConfig(seed=7, backend=backend, n_workers=2)
        dense = compress_source(DenseSource(tensor), 3, config=cfg)
        npy = compress_source(
            NpySource(npy_path), 3, batch_slices=20, config=cfg
        )
        block = compress_source(
            BlockSource([tensor[..., :1], tensor[..., 1:]]), 3, config=cfg
        )
        for other in (npy, block):
            np.testing.assert_array_equal(other.u, dense.u)
            np.testing.assert_array_equal(other.s, dense.s)
            np.testing.assert_array_equal(other.vt, dense.vt)

    def test_wrapper_entry_points_match_compress_source(
        self, tensor, npy_path
    ) -> None:
        cfg = DTuckerConfig(seed=3)
        via_compress = compress(tensor, 3, config=cfg)
        via_source = compress_source(DenseSource(tensor), 3, config=cfg)
        np.testing.assert_array_equal(via_compress.u, via_source.u)

        via_npy = compress_npy(npy_path, 3, config=cfg)
        via_npy_source = compress_source(
            NpySource(npy_path), 3, batch_slices=64, config=cfg
        )
        np.testing.assert_array_equal(via_npy.u, via_npy_source.u)

        sparse = SparseTensor.from_dense(tensor)
        via_sparse = compress_sparse(sparse, 3, config=cfg)
        via_sparse_source = compress_source(SparseSource(sparse), 3, config=cfg)
        np.testing.assert_array_equal(via_sparse.u, via_sparse_source.u)


class TestStreamingParity:
    def test_streaming_blocks_match_one_shot_quality(self, rng) -> None:
        x = random_tensor((16, 12, 20), (3, 3, 4), rng=rng, noise=0.02)
        one_shot = DTucker(ranks=(3, 3, 4), seed=0).fit(x)
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        for t0 in range(0, 20, 5):
            s.partial_fit(x[..., t0 : t0 + 5])
        # Documented tolerance: warm-started streaming sweeps land within
        # 1e-3 absolute of the one-shot reconstruction error.
        assert abs(s.result_.error(x) - one_shot.result_.error(x)) < 1e-3

    def test_block_source_one_shot_equals_dense(self, rng) -> None:
        x = random_tensor((16, 12, 20), (3, 3, 4), rng=rng, noise=0.02)
        blocks = [x[..., :5], x[..., 5:12], x[..., 12:]]
        cfg = DTuckerConfig(seed=0)
        via_blocks = compress_source(BlockSource(blocks), 3, config=cfg)
        via_dense = compress_source(DenseSource(x), 3, config=cfg)
        np.testing.assert_array_equal(via_blocks.u, via_dense.u)
        np.testing.assert_array_equal(via_blocks.s, via_dense.s)
        np.testing.assert_array_equal(via_blocks.vt, via_dense.vt)


class TestPipelineEconomy:
    def test_at_most_one_sketch_per_batch(self, npy_path) -> None:
        stats = KernelStats()
        # oversampling=2 keeps the cost model in the rsvd regime on these
        # small (18, 14) slices (2·(K + p) < min(I1, I2)).
        cfg = DTuckerConfig(seed=0, oversampling=2)
        compress_npy(npy_path, 3, batch_slices=3, config=cfg, stats=stats)
        n_batches = 7  # ceil(20 / 3)
        assert stats.misses_for("sketch") <= n_batches
        assert stats.misses_for("plan:rsvd") == n_batches

    def test_shared_sketch_draws_once(self, tensor) -> None:
        stats = KernelStats()
        sparse = SparseTensor.from_dense(tensor)
        compress_sparse(sparse, 3, batch_slices=3, config=DTuckerConfig(seed=0), stats=stats)
        assert stats.misses_for("sketch") == 1

    def test_dense_single_batch_single_sketch(self, tensor) -> None:
        stats = KernelStats()
        compress(tensor, 3, config=DTuckerConfig(seed=0, oversampling=2), stats=stats)
        assert stats.misses_for("sketch") == 1

    def test_fit_pipeline_w_reuse(self, tensor) -> None:
        pipeline = FitPipeline((3, 3, 2, 2), config=DTuckerConfig(seed=0))
        fit = pipeline.fit(DenseSource(tensor))
        assert fit.kernel_stats is not None
        assert fit.kernel_stats.w_evals_per_sweep() <= 1.0
        assert fit.kernel_stats.misses_for("sketch") <= 1


class TestFitPipeline:
    def test_matches_dtucker_fit_bitwise(self, tensor) -> None:
        model = DTucker(ranks=(3, 3, 2, 2), seed=0).fit(tensor)
        fit = FitPipeline(
            (3, 3, 2, 2), config=DTuckerConfig(seed=0)
        ).fit(DenseSource(tensor))
        np.testing.assert_array_equal(fit.result.core, model.result_.core)
        for a, b in zip(fit.result.factors, model.result_.factors):
            np.testing.assert_array_equal(a, b)
        assert fit.n_iters == model.n_iters_
        assert fit.history == model.history_

    def test_npy_source_matches_fit_from_file(self, tensor, npy_path) -> None:
        model = DTucker(ranks=(3, 3, 2, 2), seed=0).fit_from_file(
            npy_path, batch_slices=3
        )
        fit = FitPipeline(
            (3, 3, 2, 2), config=DTuckerConfig(seed=0)
        ).fit(NpySource(npy_path), batch_slices=3)
        np.testing.assert_array_equal(fit.result.core, model.result_.core)

    def test_refit_matches_dtucker_refit(self, tensor) -> None:
        model = DTucker(ranks=(4, 4, 2, 2), slice_rank=6, seed=0).fit(tensor)
        pipeline = FitPipeline((4, 4, 2, 2), config=DTuckerConfig(seed=0))
        result, outcome, traces = pipeline.refit(model.slice_svd_, (3, 3, 2, 2))
        expected = model.refit((3, 3, 2, 2))
        np.testing.assert_array_equal(result.core, expected.core)
        assert outcome.n_iters > 0
        assert traces

    def test_rejects_bad_init(self) -> None:
        with pytest.raises(ShapeError):
            FitPipeline((3, 3, 2), init="bogus")

    def test_resolve_slice_rank_policies(self) -> None:
        # strict: floor enforced, explicit rank clamped to min(I1, I2)
        assert resolve_slice_rank((10, 8, 5), 3, 4, None) == 4
        assert resolve_slice_rank((10, 8, 5), 3, 4, 20) == 8
        with pytest.raises(RankError, match="must be at least"):
            resolve_slice_rank((10, 8, 5), 3, 4, 2)
        # lenient: explicit rank passes through untouched
        assert resolve_slice_rank((10, 8, 5), 3, 4, 2, strict=False) == 2
        assert resolve_slice_rank((10, 8, 5), 3, 4, 20, strict=False) == 20
        assert resolve_slice_rank((10, 8, 5), 3, 4, None, strict=False) == 4
