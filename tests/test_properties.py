"""Property-based (hypothesis) tests on cross-module invariants.

These tests generate random problem geometries and assert algebraic
invariants that must hold for *every* input: unfolding identities, energy
conservation under orthonormal projections, monotonicity of ALS, and
consistency between the compressed and dense computation paths.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.initialization import initialize
from repro.core.iteration import als_sweeps
from repro.core.slice_svd import compress
from repro.tensor.norms import frobenius_norm_squared
from repro.tensor.products import (
    kron_secondary,
    mode_product,
    multi_mode_product,
    tucker_to_tensor,
)
from repro.tensor.random import random_tensor, random_tucker
from repro.tensor.slices import from_slices, to_slices
from repro.tensor.unfold import fold, unfold


# Geometry strategies kept small: properties are about structure, not scale.
orders = st.integers(2, 4)


@st.composite
def tensor_shapes(draw) -> tuple[int, ...]:
    order = draw(orders)
    return tuple(draw(st.integers(2, 6)) for _ in range(order))


@st.composite
def tucker_problems(draw) -> tuple[tuple[int, ...], tuple[int, ...], int]:
    shape = draw(tensor_shapes())
    ranks = tuple(draw(st.integers(1, d)) for d in shape)
    seed = draw(st.integers(0, 2**16))
    return shape, ranks, seed


class TestUnfoldingInvariants:
    @given(tucker_problems())
    def test_unfold_preserves_norm(self, problem) -> None:
        shape, _, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        for n in range(len(shape)):
            assert np.isclose(
                np.linalg.norm(unfold(x, n)), np.linalg.norm(x.ravel())
            )

    @given(tucker_problems())
    def test_fold_unfold_roundtrip(self, problem) -> None:
        shape, _, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        for n in range(len(shape)):
            np.testing.assert_array_equal(fold(unfold(x, n), n, shape), x)

    @given(tucker_problems())
    def test_slices_roundtrip(self, problem) -> None:
        shape, _, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        np.testing.assert_array_equal(from_slices(to_slices(x), shape), x)


class TestTuckerAlgebra:
    @given(tucker_problems())
    @settings(max_examples=15)
    def test_unfolding_identity(self, problem) -> None:
        shape, ranks, seed = problem
        rng = np.random.default_rng(seed)
        core, factors = random_tucker(shape, ranks, rng)
        y = tucker_to_tensor(core, factors)
        for n in range(len(shape)):
            rhs = factors[n] @ unfold(core, n) @ kron_secondary(factors, n).T
            np.testing.assert_allclose(unfold(y, n), rhs, atol=1e-9)

    @given(tucker_problems())
    @settings(max_examples=15)
    def test_projection_never_gains_energy(self, problem) -> None:
        # ||X x_n Q^T||_F <= ||X||_F for orthonormal Q.
        shape, ranks, seed = problem
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        _, factors = random_tucker(shape, ranks, rng)
        projected = multi_mode_product(x, factors, transpose=True)
        assert frobenius_norm_squared(projected) <= frobenius_norm_squared(x) + 1e-9

    @given(tucker_problems())
    @settings(max_examples=15)
    def test_mode_product_norm_bound(self, problem) -> None:
        shape, _, seed = problem
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        n = int(rng.integers(0, len(shape)))
        a = rng.standard_normal((3, shape[n]))
        spectral = np.linalg.svd(a, compute_uv=False)[0]
        assert (
            np.linalg.norm(mode_product(x, a, n).ravel())
            <= spectral * np.linalg.norm(x.ravel()) + 1e-9
        )


class TestCompressedPathConsistency:
    @given(tucker_problems())
    @settings(max_examples=10)
    def test_exact_compression_reconstructs(self, problem) -> None:
        shape, _, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        k = min(shape[0], shape[1])
        ss = compress(x, k, exact=True)
        np.testing.assert_allclose(ss.reconstruct(), x, atol=1e-8)

    @given(tucker_problems())
    @settings(max_examples=10)
    def test_energy_never_exceeds_original(self, problem) -> None:
        shape, _, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        k = max(1, min(shape[0], shape[1]) - 1)
        ss = compress(x, k, rng=seed)
        assert ss.approx_norm_squared() <= frobenius_norm_squared(x) * (1 + 1e-9)

    @given(tucker_problems())
    @settings(max_examples=10)
    def test_init_plus_sweeps_recovers_exact_lowrank(self, problem) -> None:
        shape, ranks, seed = problem
        x = random_tensor(shape, ranks, rng=seed, noise=0.0)
        if np.linalg.norm(x.ravel()) < 1e-9:
            return  # degenerate random core, nothing to recover
        k = min(max(ranks[0], ranks[1]), min(shape[:2]))
        ss = compress(x, k, exact=True)
        core, factors = initialize(ss, ranks)
        out = als_sweeps(ss, ranks, factors, max_iters=10)
        np.testing.assert_allclose(
            tucker_to_tensor(out.core, out.factors), x, atol=1e-5 * max(1.0, np.abs(x).max())
        )

    @given(tucker_problems())
    @settings(max_examples=10)
    def test_sweep_errors_monotone(self, problem) -> None:
        shape, ranks, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        k = min(max(ranks[0], ranks[1]), min(shape[:2]))
        ss = compress(x, k, exact=True)
        _, factors = initialize(ss, ranks)
        out = als_sweeps(ss, ranks, factors, max_iters=6, tol=1e-15)
        assert all(
            later <= earlier + 1e-8
            for earlier, later in zip(out.errors, out.errors[1:])
        )

    @given(tucker_problems())
    @settings(max_examples=10)
    def test_factors_always_orthonormal(self, problem) -> None:
        shape, ranks, seed = problem
        x = np.random.default_rng(seed).standard_normal(shape)
        k = min(max(ranks[0], ranks[1]), min(shape[:2]))
        ss = compress(x, k, exact=True)
        _, factors = initialize(ss, ranks)
        out = als_sweeps(ss, ranks, factors, max_iters=3)
        for f in out.factors:
            np.testing.assert_allclose(
                f.T @ f, np.eye(f.shape[1]), atol=1e-8
            )
