"""Tests for TTM products, Kronecker/Khatri-Rao helpers, reconstruction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.tensor.products import (
    gram,
    khatri_rao,
    kron_all,
    kron_secondary,
    mode_product,
    multi_mode_product,
    tucker_to_tensor,
)
from repro.tensor.random import random_tucker
from repro.tensor.unfold import fold, unfold


class TestModeProduct:
    def test_against_unfolding_definition(self, tensor3: np.ndarray, rng) -> None:
        a = rng.standard_normal((4, tensor3.shape[1]))
        result = mode_product(tensor3, a, 1)
        expected = fold(a @ unfold(tensor3, 1), 1, (7, 4, 6))
        np.testing.assert_allclose(result, expected)

    def test_transpose_flag(self, tensor3: np.ndarray, rng) -> None:
        a = rng.standard_normal((tensor3.shape[0], 3))
        np.testing.assert_allclose(
            mode_product(tensor3, a, 0, transpose=True),
            mode_product(tensor3, a.T, 0),
        )

    def test_identity_is_noop(self, tensor3: np.ndarray) -> None:
        eye = np.eye(tensor3.shape[2])
        np.testing.assert_allclose(mode_product(tensor3, eye, 2), tensor3)

    def test_successive_products_compose(self, tensor3: np.ndarray, rng) -> None:
        a = rng.standard_normal((3, tensor3.shape[0]))
        b = rng.standard_normal((2, 3))
        lhs = mode_product(mode_product(tensor3, a, 0), b, 0)
        rhs = mode_product(tensor3, b @ a, 0)
        np.testing.assert_allclose(lhs, rhs)

    def test_different_modes_commute(self, tensor3: np.ndarray, rng) -> None:
        a = rng.standard_normal((3, tensor3.shape[0]))
        b = rng.standard_normal((2, tensor3.shape[2]))
        lhs = mode_product(mode_product(tensor3, a, 0), b, 2)
        rhs = mode_product(mode_product(tensor3, b, 2), a, 0)
        np.testing.assert_allclose(lhs, rhs)

    def test_shape_mismatch(self, tensor3: np.ndarray) -> None:
        with pytest.raises(ShapeError):
            mode_product(tensor3, np.zeros((3, 99)), 0)

    def test_bad_mode(self, tensor3: np.ndarray) -> None:
        with pytest.raises(ShapeError):
            mode_product(tensor3, np.zeros((3, 7)), 5)


class TestMultiModeProduct:
    def test_all_modes(self, tensor3: np.ndarray, rng) -> None:
        mats = [rng.standard_normal((2, d)) for d in tensor3.shape]
        out = multi_mode_product(tensor3, mats)
        expected = tensor3
        for n, m in enumerate(mats):
            expected = mode_product(expected, m, n)
        np.testing.assert_allclose(out, expected)

    def test_skip(self, tensor3: np.ndarray, rng) -> None:
        mats = [rng.standard_normal((2, d)) for d in tensor3.shape]
        out = multi_mode_product(tensor3, mats, skip=1)
        assert out.shape == (2, tensor3.shape[1], 2)

    def test_explicit_modes(self, tensor3: np.ndarray, rng) -> None:
        a = rng.standard_normal((2, tensor3.shape[2]))
        out = multi_mode_product(tensor3, [a], modes=[2])
        np.testing.assert_allclose(out, mode_product(tensor3, a, 2))

    def test_transpose(self, tensor3: np.ndarray, rng) -> None:
        mats = [rng.standard_normal((d, 2)) for d in tensor3.shape]
        out = multi_mode_product(tensor3, mats, transpose=True)
        expected = tensor3
        for n, m in enumerate(mats):
            expected = mode_product(expected, m.T, n)
        np.testing.assert_allclose(out, expected)

    def test_duplicate_modes_rejected(self, tensor3: np.ndarray) -> None:
        with pytest.raises(ShapeError):
            multi_mode_product(
                tensor3, [np.zeros((2, 7)), np.zeros((2, 7))], modes=[0, 0]
            )

    def test_count_mismatch(self, tensor3: np.ndarray) -> None:
        with pytest.raises(ShapeError):
            multi_mode_product(tensor3, [np.zeros((2, 7))], modes=[0, 1])

    def test_greedy_order_matches_naive(self, tensor4: np.ndarray, rng) -> None:
        # Contraction order must not change the value, only the cost.
        mats = [rng.standard_normal((d, 2)) for d in tensor4.shape]
        out = multi_mode_product(tensor4, mats, transpose=True)
        naive = tensor4
        for n in range(tensor4.ndim):
            naive = mode_product(naive, mats[n].T, n)
        np.testing.assert_allclose(out, naive)


class TestKron:
    def test_kron_all_two(self, rng) -> None:
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((4, 5))
        np.testing.assert_allclose(kron_all([a, b]), np.kron(a, b))

    def test_kron_all_associativity(self, rng) -> None:
        mats = [rng.standard_normal((2, 2)) for _ in range(3)]
        np.testing.assert_allclose(
            kron_all(mats), np.kron(mats[0], np.kron(mats[1], mats[2]))
        )

    def test_kron_all_empty(self) -> None:
        with pytest.raises(ShapeError):
            kron_all([])

    def test_kron_secondary_descending_order(self, rng) -> None:
        mats = [rng.standard_normal((2, 2)) for _ in range(4)]
        out = kron_secondary(mats, 1)
        expected = np.kron(np.kron(mats[3], mats[2]), mats[0])
        np.testing.assert_allclose(out, expected)

    def test_tucker_unfolding_identity(self, rng) -> None:
        # The identity that fixes the ordering convention library-wide:
        # Y_(n) = A(n) G_(n) kron_secondary(A, n)^T.
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        y = tucker_to_tensor(core, factors)
        for n in range(3):
            rhs = factors[n] @ unfold(core, n) @ kron_secondary(factors, n).T
            np.testing.assert_allclose(unfold(y, n), rhs, atol=1e-10)

    def test_vec_identity(self, rng) -> None:
        # vec(X) = (A_N kron ... kron A_1) vec(G) in Fortran order.
        from repro.tensor.unfold import vectorize

        core, factors = random_tucker((4, 3, 5), (2, 2, 2), rng)
        y = tucker_to_tensor(core, factors)
        big = kron_all(factors[::-1])
        np.testing.assert_allclose(vectorize(y), big @ vectorize(core), atol=1e-10)


class TestKhatriRao:
    def test_columnwise_kron(self, rng) -> None:
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((5, 4))
        kr = khatri_rao([a, b])
        for r in range(4):
            np.testing.assert_allclose(kr[:, r], np.kron(a[:, r], b[:, r]))

    def test_reverse(self, rng) -> None:
        a, b = rng.standard_normal((3, 2)), rng.standard_normal((5, 2))
        np.testing.assert_allclose(
            khatri_rao([a, b], reverse=True), khatri_rao([b, a])
        )

    def test_mismatched_columns(self, rng) -> None:
        with pytest.raises(ShapeError):
            khatri_rao([rng.standard_normal((3, 2)), rng.standard_normal((3, 4))])


class TestTuckerToTensor:
    def test_shape(self, rng) -> None:
        core, factors = random_tucker((6, 5, 4, 3), (2, 2, 2, 2), rng)
        assert tucker_to_tensor(core, factors).shape == (6, 5, 4, 3)

    def test_orthonormal_projection_roundtrip(self, rng) -> None:
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        x = tucker_to_tensor(core, factors)
        back = multi_mode_product(x, factors, transpose=True)
        np.testing.assert_allclose(back, core, atol=1e-10)

    def test_factor_count_mismatch(self, rng) -> None:
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        with pytest.raises(ShapeError):
            tucker_to_tensor(core, factors[:2])


class TestGram:
    def test_value_and_symmetry(self, rng) -> None:
        a = rng.standard_normal((10, 4))
        g = gram(a)
        np.testing.assert_allclose(g, a.T @ a, atol=1e-12)
        np.testing.assert_allclose(g, g.T)

    @given(st.integers(1, 6), st.integers(1, 6))
    def test_psd(self, m: int, n: int) -> None:
        a = np.random.default_rng(0).standard_normal((m, n))
        w = np.linalg.eigvalsh(gram(a))
        assert (w > -1e-10).all()
