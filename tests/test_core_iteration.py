"""Tests for the compressed-domain ALS iteration phase."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initialization import initialize, random_initialize
from repro.core.iteration import als_sweeps
from repro.core.slice_svd import compress
from repro.exceptions import ConvergenceError
from repro.tensor.products import tucker_to_tensor
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


class TestAlsSweeps:
    def test_converges_on_lowrank(self, lowrank3: np.ndarray) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, factors = initialize(ss, (3, 2, 2))
        out = als_sweeps(ss, (3, 2, 2), factors)
        assert out.converged
        assert out.errors[-1] < 1e-8

    def test_factors_orthonormal(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, factors = initialize(ss, (3, 2, 2))
        out = als_sweeps(ss, (3, 2, 2), factors)
        for f in out.factors:
            assert_orthonormal(f)

    def test_error_monotone_nonincreasing(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.2)
        ss = compress(x, 3, rng=0)
        _, factors = random_initialize(ss, (3, 3, 3), rng=1)
        out = als_sweeps(ss, (3, 3, 3), factors, max_iters=10, tol=1e-12)
        diffs = np.diff(out.errors)
        assert (diffs <= 1e-9).all(), out.errors

    def test_recovers_from_random_init(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.0)
        ss = compress(x, 3, rng=0)
        _, factors = random_initialize(ss, (3, 3, 3), rng=1)
        out = als_sweeps(ss, (3, 3, 3), factors, max_iters=50)
        np.testing.assert_allclose(
            tucker_to_tensor(out.core, out.factors), x, atol=1e-5
        )

    def test_sweep_budget_respected(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.3)
        ss = compress(x, 3, rng=0)
        _, factors = random_initialize(ss, (3, 3, 3), rng=1)
        out = als_sweeps(ss, (3, 3, 3), factors, max_iters=2, tol=1e-16)
        assert out.n_iters == 2
        assert not out.converged
        assert len(out.errors) == 2

    def test_callback_invoked_per_sweep(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, factors = initialize(ss, (3, 2, 2))
        seen: list[tuple[int, float]] = []
        out = als_sweeps(
            ss, (3, 2, 2), factors, callback=lambda i, e: seen.append((i, e))
        )
        assert [i for i, _ in seen] == list(range(1, out.n_iters + 1))
        assert [e for _, e in seen] == out.errors

    def test_order4(self, rng) -> None:
        x = random_tensor((8, 7, 5, 4), (2, 2, 2, 2), rng=rng, noise=0.05)
        ss = compress(x, 2, rng=0)
        _, factors = initialize(ss, (2, 2, 2, 2))
        out = als_sweeps(ss, (2, 2, 2, 2), factors)
        assert out.errors[-1] < 0.02

    def test_order2(self, rng) -> None:
        m = rng.standard_normal((15, 4)) @ rng.standard_normal((4, 12))
        ss = compress(m, 4, rng=0)
        _, factors = initialize(ss, (4, 4))
        out = als_sweeps(ss, (4, 4), factors)
        np.testing.assert_allclose(
            tucker_to_tensor(out.core, out.factors), m, atol=1e-6
        )

    def test_wrong_factor_count(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, factors = initialize(ss, (3, 2, 2))
        with pytest.raises(ConvergenceError):
            als_sweeps(ss, (3, 2, 2), factors[:2])

    def test_error_estimate_matches_true_error(self, rng) -> None:
        # The compressed-domain estimate must track the true reconstruction
        # error up to the (small) compression residual.
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.1)
        ss = compress(x, 3, oversampling=10, power_iterations=2, rng=0)
        _, factors = initialize(ss, (3, 3, 3))
        out = als_sweeps(ss, (3, 3, 3), factors)
        from repro.tensor.norms import reconstruction_error

        true_err = reconstruction_error(x, tucker_to_tensor(out.core, out.factors))
        assert out.errors[-1] == pytest.approx(true_err, abs=5e-3)

    def test_input_factors_not_mutated(self, lowrank3) -> None:
        ss = compress(lowrank3, 3, rng=0)
        _, factors = initialize(ss, (3, 2, 2))
        snapshots = [f.copy() for f in factors]
        als_sweeps(ss, (3, 2, 2), factors)
        for f, snap in zip(factors, snapshots):
            np.testing.assert_array_equal(f, snap)
