"""Tests for the argument-validation helpers and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ConvergenceError,
    DatasetError,
    NotFittedError,
    RankError,
    ReproError,
    ShapeError,
)
from repro.validation import (
    as_tensor,
    check_matrix,
    check_mode,
    check_positive_int,
    check_probability,
    check_ranks,
    check_same_length,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [ShapeError, RankError, ConvergenceError, DatasetError, NotFittedError]
    )
    def test_all_derive_from_repro_error(self, exc: type) -> None:
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self) -> None:
        # Shape/rank problems should also be catchable as ValueError.
        assert issubclass(ShapeError, ValueError)
        assert issubclass(RankError, ValueError)

    def test_runtime_error_compatibility(self) -> None:
        assert issubclass(ConvergenceError, RuntimeError)
        assert issubclass(NotFittedError, RuntimeError)


class TestAsTensor:
    def test_int_promoted_to_float(self) -> None:
        out = as_tensor(np.arange(6).reshape(2, 3))
        assert out.dtype == np.float64

    def test_float32_preserved(self) -> None:
        out = as_tensor(np.zeros((2, 2), dtype=np.float32) + 1.0)
        assert out.dtype == np.float32

    def test_min_order(self) -> None:
        with pytest.raises(ShapeError):
            as_tensor(np.ones(3), min_order=2)

    def test_empty_mode(self) -> None:
        with pytest.raises(ShapeError):
            as_tensor(np.ones((2, 0, 3)))

    def test_nan_rejected(self) -> None:
        with pytest.raises(ShapeError, match="non-finite"):
            as_tensor(np.array([1.0, np.nan]))

    def test_inf_rejected(self) -> None:
        with pytest.raises(ShapeError, match="non-finite"):
            as_tensor(np.array([1.0, np.inf]))

    def test_non_numeric_rejected(self) -> None:
        with pytest.raises(ShapeError):
            as_tensor(np.array(["a", "b"]))

    def test_error_names_argument(self) -> None:
        with pytest.raises(ShapeError, match="my_arg"):
            as_tensor(np.ones(2), min_order=3, name="my_arg")

    def test_list_input(self) -> None:
        out = as_tensor([[1, 2], [3, 4]])
        assert out.shape == (2, 2)


class TestCheckMode:
    def test_valid(self) -> None:
        assert check_mode(2, 3) == 2

    def test_out_of_range(self) -> None:
        with pytest.raises(ShapeError):
            check_mode(3, 3)

    def test_negative(self) -> None:
        with pytest.raises(ShapeError):
            check_mode(-1, 3)

    def test_non_integer(self) -> None:
        with pytest.raises(ShapeError):
            check_mode(1.5, 3)


class TestCheckRanks:
    def test_scalar_broadcast(self) -> None:
        assert check_ranks(3, (5, 6, 7)) == (3, 3, 3)

    def test_sequence(self) -> None:
        assert check_ranks([2, 3, 4], (5, 6, 7)) == (2, 3, 4)

    def test_length_mismatch(self) -> None:
        with pytest.raises(RankError):
            check_ranks([2, 3], (5, 6, 7))

    def test_rank_exceeds_mode(self) -> None:
        with pytest.raises(RankError):
            check_ranks([2, 7, 4], (5, 6, 7))

    def test_zero_rank(self) -> None:
        with pytest.raises(RankError):
            check_ranks([0, 3, 4], (5, 6, 7))

    def test_non_integer_rank(self) -> None:
        with pytest.raises(RankError):
            check_ranks([1.5, 3, 4], (5, 6, 7))

    def test_rank_equal_to_mode_allowed(self) -> None:
        assert check_ranks([5, 6, 7], (5, 6, 7)) == (5, 6, 7)


class TestScalars:
    def test_positive_int(self) -> None:
        assert check_positive_int(4, name="x") == 4

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_positive_int_rejects(self, bad) -> None:
        with pytest.raises(ShapeError):
            check_positive_int(bad, name="x")

    def test_probability(self) -> None:
        assert check_probability(0.5, name="p") == 0.5
        assert check_probability(1.0, name="p") == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.1])
    def test_probability_rejects(self, bad) -> None:
        with pytest.raises(ShapeError):
            check_probability(bad, name="p")


class TestCheckMatrix:
    def test_valid(self, rng) -> None:
        m = check_matrix(rng.standard_normal((3, 4)))
        assert m.shape == (3, 4)

    def test_vector_rejected(self) -> None:
        with pytest.raises(ShapeError):
            check_matrix(np.ones(3))

    def test_3d_rejected(self) -> None:
        with pytest.raises(ShapeError):
            check_matrix(np.ones((2, 2, 2)))


class TestCheckSameLength:
    def test_ok(self) -> None:
        check_same_length([1, 2], ["a", "b"], names=("x", "y"))

    def test_mismatch(self) -> None:
        with pytest.raises(ShapeError, match="x.*y"):
            check_same_length([1], ["a", "b"], names=("x", "y"))
