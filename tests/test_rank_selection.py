"""Tests for compressed-domain rank selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rank_selection import estimate_error, mode_spectra, suggest_ranks
from repro.core.slice_svd import compress
from repro.exceptions import RankError, ShapeError
from repro.tensor.random import random_tensor
from repro.tensor.unfold import unfold


class TestModeSpectra:
    def test_matches_true_spectra_on_exact_compression(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.1)
        ssvd = compress(x, 12, exact=True)  # K = min(I1, I2): lossless
        spectra = mode_spectra(ssvd)
        for n in (0, 1):
            true_s = np.linalg.svd(unfold(x, n), compute_uv=False)
            k = len(spectra[n])
            np.testing.assert_allclose(spectra[n], true_s[:k], rtol=1e-6)

    def test_descending(self, lowrank3) -> None:
        for s in mode_spectra(compress(lowrank3, 3, rng=0)):
            assert (np.diff(s) <= 1e-9).all()

    def test_order2(self, rng) -> None:
        m = rng.standard_normal((12, 9))
        spectra = mode_spectra(compress(m, 9, exact=True))
        assert len(spectra) == 2
        true_s = np.linalg.svd(m, compute_uv=False)
        np.testing.assert_allclose(spectra[0][: len(true_s)], true_s, rtol=1e-6)

    def test_energy_bounded_by_tensor(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.2)
        ssvd = compress(x, 5, rng=0)
        total = float(np.sum(x**2))
        for s in mode_spectra(ssvd):
            assert np.sum(s**2) <= total * (1 + 1e-9)


class TestEstimateError:
    def test_upper_bounds_true_hosvd_error(self, rng) -> None:
        from repro.baselines.hosvd import hosvd

        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.15)
        ssvd = compress(x, 10, exact=True)
        ranks = (3, 3, 3)
        estimated = estimate_error(ssvd, ranks)
        true_err = hosvd(x, ranks).result.error(x)
        assert estimated >= true_err - 1e-9

    def test_zero_for_full_ranks_exact(self, lowrank3) -> None:
        ssvd = compress(lowrank3, 10, exact=True)
        assert estimate_error(ssvd, (12, 10, 8)) < 1e-10

    def test_monotone_in_rank(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.2)
        ssvd = compress(x, 8, rng=0)
        errs = [estimate_error(ssvd, (r, r, r)) for r in (1, 2, 3, 5)]
        assert all(b <= a + 1e-12 for a, b in zip(errs, errs[1:]))

    def test_wrong_rank_count(self, lowrank3) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        with pytest.raises(RankError):
            estimate_error(ssvd, (3, 3))

    def test_capped_at_one(self, rng) -> None:
        x = rng.standard_normal((10, 9, 8))
        ssvd = compress(x, 2, rng=0)
        assert estimate_error(ssvd, (1, 1, 1)) <= 1.0


class TestSuggestRanks:
    def test_meets_target_on_lowrank(self, lowrank3) -> None:
        ssvd = compress(lowrank3, 8, exact=True)
        ranks = suggest_ranks(ssvd, 0.01)
        assert estimate_error(ssvd, ranks) <= 0.01
        # The tensor is exactly rank (3, 2, 2); suggestions must not exceed
        # the true ranks by much.
        assert ranks <= (4, 3, 3)

    def test_tighter_target_larger_ranks(self, rng) -> None:
        x = random_tensor((16, 14, 12), (4, 4, 4), rng=rng, noise=0.2)
        ssvd = compress(x, 10, exact=True)
        loose = suggest_ranks(ssvd, 0.5)
        tight = suggest_ranks(ssvd, 0.05)
        assert all(t >= l for t, l in zip(tight, loose))

    def test_max_rank_cap(self, rng) -> None:
        x = random_tensor((16, 14, 12), (4, 4, 4), rng=rng, noise=0.2)
        ssvd = compress(x, 10, rng=0)
        ranks = suggest_ranks(ssvd, 0.0001, max_rank=3)
        assert all(r <= 3 for r in ranks)

    def test_always_at_least_one(self, rng) -> None:
        x = rng.standard_normal((8, 7, 6))
        ssvd = compress(x, 4, rng=0)
        assert all(r >= 1 for r in suggest_ranks(ssvd, 0.99))

    def test_invalid_target(self, lowrank3) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        with pytest.raises(ShapeError):
            suggest_ranks(ssvd, 0.0)
        with pytest.raises(ShapeError):
            suggest_ranks(ssvd, 1.5)

    def test_end_to_end_error_meets_target(self, rng) -> None:
        """The suggested ranks, fed to DTucker, actually meet the budget."""
        from repro.core.dtucker import DTucker

        x = random_tensor((18, 16, 14), (4, 3, 3), rng=rng, noise=0.1)
        ssvd = compress(x, 12, exact=True)
        target = 0.05
        ranks = suggest_ranks(ssvd, target)
        model = DTucker(ranks=ranks, seed=0).fit(x)
        assert model.result_.error(x) <= target
