"""Tests for the persistent model store and the serving layer."""

from __future__ import annotations

import json
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DTuckerConfig
from repro.core.dtucker import DTucker
from repro.core.fit_pipeline import FitPipeline
from repro.core.result import TuckerResult
from repro.core.slice_svd import SliceSVD, compress
from repro.core.sources import DenseSource
from repro.exceptions import ShapeError, StoreError, StoreFormatError
from repro.store import (
    MANIFEST_NAME,
    ModelStore,
    ServedModel,
    read_manifest,
    read_slice_svd_archive,
    read_tucker_archive,
    write_slice_svd_archive,
    write_tucker_archive,
)
from repro.tensor.random import random_tensor, random_tucker


@pytest.fixture
def temporal(rng: np.random.Generator) -> np.ndarray:
    """Low-rank + noise tensor whose last mode plays the temporal role."""
    return random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.05)


def fitted_store(x: np.ndarray, path: Path, **kwargs: object) -> tuple[DTucker, ModelStore]:
    model = DTucker(ranks=(3, 3, 3), seed=0, **kwargs).fit(x)
    return model, model.save(path)


class TestSaveAndManifest:
    def test_roundtrip_bit_identity(self, temporal, tmp_path) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        served = store.open()
        np.testing.assert_array_equal(
            served.result.core, model.result_.core
        )
        for a, b in zip(served.result.factors, model.result_.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(served.slice_svd.u, model.slice_svd_.u)
        np.testing.assert_array_equal(
            served.reconstruct(), model.result_.reconstruct()
        )
        served.close()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_roundtrip_identical_across_backends(
        self, temporal, tmp_path, backend
    ) -> None:
        """fit → save → load → reconstruct is bit-identical on every backend."""
        reference = DTucker(ranks=(3, 3, 3), seed=0).fit(temporal)
        model = DTucker(
            ranks=(3, 3, 3), seed=0, backend=backend, n_workers=2
        ).fit(temporal)
        store = model.save(tmp_path / backend)
        with ModelStore(store.path).open() as served:
            np.testing.assert_array_equal(
                served.reconstruct(), reference.result_.reconstruct()
            )

    def test_manifest_metadata_without_payloads(self, temporal, tmp_path) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        fresh = ModelStore(store.path)
        assert fresh.shape == temporal.shape
        assert fresh.ranks == (3, 3, 3)
        assert fresh.slice_rank == model.slice_svd_.rank
        assert fresh.nbytes > 0
        assert fresh.compression_ratio == pytest.approx(
            model.compression_ratio_
        )
        assert fresh.config == model.config
        assert fresh.manifest["fit"]["history"] == model.history_

    def test_refuses_overwrite_by_default(self, temporal, tmp_path) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        with pytest.raises(StoreError, match="overwrite"):
            model.save(store.path)
        model.save(store.path, overwrite=True)  # explicit opt-in works

    def test_missing_store(self, tmp_path) -> None:
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path / "nothing")

    def test_corrupt_manifest_typed_error(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        (store.path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StoreFormatError, match="JSON"):
            read_manifest(store.path)

    def test_foreign_manifest_rejected(self, tmp_path) -> None:
        p = tmp_path / "m"
        p.mkdir()
        (p / MANIFEST_NAME).write_text(json.dumps({"format": "something.else"}))
        with pytest.raises(StoreFormatError, match="model store"):
            read_manifest(p)

    def test_future_version_rejected(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        manifest = json.loads((store.path / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (store.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="upgrade"):
            read_manifest(store.path)

    def test_missing_key_typed_error_not_keyerror(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        manifest = json.loads((store.path / MANIFEST_NAME).read_text())
        del manifest["ranks"]
        (store.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="ranks"):
            read_manifest(store.path)

    def test_pipeline_save_emits_store(self, temporal, tmp_path) -> None:
        pipeline = FitPipeline((3, 3, 3), config=DTuckerConfig(seed=0))
        fit = pipeline.fit(DenseSource(temporal), save=tmp_path / "p")
        with ModelStore(tmp_path / "p").open() as served:
            np.testing.assert_array_equal(
                served.reconstruct(), fit.result.reconstruct()
            )


class TestServedQueries:
    def test_reconstruct_subtensor(self, temporal, tmp_path) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            block = served.reconstruct([(2, 7), None, (1, 9)])
            np.testing.assert_array_equal(
                block, model.result_.reconstruct()[2:7, :, 1:9]
            )

    def test_reconstruct_bad_range(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            with pytest.raises(StoreError, match="mode 0"):
                served.reconstruct([(0, 99), None, None])
            with pytest.raises(StoreError, match="3 index ranges"):
                served.reconstruct([(0, 2)])

    def test_query_time_range_matches_full_refit_accuracy(
        self, temporal, tmp_path
    ) -> None:
        """A served range query is as accurate as refitting from scratch."""
        model, store = fitted_store(temporal, tmp_path / "m")
        t0, t1 = 2, 9
        sub = temporal[..., t0:t1]
        with store.open() as served:
            local = served.query_time_range(t0, t1)
        direct = DTucker(ranks=(3, 3, 3), seed=0).fit(sub)
        assert local.shape == sub.shape
        # The recombined answer must land within the fitted model's own
        # reconstruction-error bound (generous slack: both are ~noise level).
        budget = max(2.0 * direct.result_.error(sub), 1.5 * model.history_[-1])
        assert local.error(sub) <= budget

    def test_query_time_range_full_extent_matches_refit(
        self, temporal, tmp_path
    ) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            local = served.query_time_range(0, temporal.shape[-1])
        refit = model.refit()
        np.testing.assert_allclose(
            local.reconstruct(), refit.reconstruct(), atol=1e-10
        )

    def test_query_out_of_range(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            with pytest.raises(StoreError, match="time range"):
                served.query_time_range(5, 99)

    def test_query_rank_clipped_to_range(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            local = served.query_time_range(4, 6)  # extent 2 < rank 3
        assert local.ranks == (3, 3, 2)

    def test_order4_time_geometry(self, rng, tmp_path) -> None:
        x = random_tensor((8, 7, 4, 6), (2, 2, 2, 2), rng=rng, noise=0.05)
        model = DTucker(ranks=(2, 2, 2, 2), seed=0).fit(x)
        store = model.save(tmp_path / "m4")
        with store.open() as served:
            local = served.query_time_range(1, 4)
            sub = x[..., 1:4]
            assert local.shape == sub.shape
            direct = DTucker(ranks=(2, 2, 2, 2), seed=0).fit(sub)
            assert local.error(sub) <= 2.0 * direct.result_.error(sub) + 1e-6

    def test_permuted_store_round_trips(self, temporal, tmp_path) -> None:
        """slice_modes permutation survives save/open; answers stay aligned."""
        model = DTucker(ranks=(3, 3, 3), seed=0, slice_modes=(1, 0)).fit(temporal)
        store = model.save(tmp_path / "perm")
        with store.open() as served:
            assert served.shape == temporal.shape
            np.testing.assert_array_equal(
                served.reconstruct(), model.result_.reconstruct()
            )
            local = served.query_time_range(0, temporal.shape[-1])
            np.testing.assert_allclose(
                local.reconstruct(), model.refit().reconstruct(), atol=1e-10
            )

    def test_temporal_mode_in_slice_plane_rejected(self, temporal, tmp_path) -> None:
        model = DTucker(ranks=(3, 3, 3), seed=0, slice_modes=(0, 2)).fit(temporal)
        store = model.save(tmp_path / "m")
        with store.open() as served:
            with pytest.raises(StoreError, match="temporal"):
                served.query_time_range(0, 2)

    def test_served_refit_new_ranks(self, temporal, tmp_path) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            smaller = served.refit((2, 2, 2))
        np.testing.assert_allclose(
            smaller.reconstruct(), model.refit((2, 2, 2)).reconstruct(),
            atol=1e-10,
        )

    def test_telemetry_records_queries(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            served.reconstruct()
            served.query_time_range(0, 4)
            served.query_time_range(4, 8)
            stats = served.stats
            assert stats.n_queries == 3
            assert stats.by_kind() == {"reconstruct": 1, "time_range": 2}
            assert stats.total_seconds >= 0.0
            assert "queries=3" in stats.summary()


class TestConcurrentServing:
    def test_concurrent_readers_bit_identical(self, temporal, tmp_path) -> None:
        """N threads on one ServedModel return exactly the serial answers."""
        _, store = fitted_store(temporal, tmp_path / "m")
        steps = temporal.shape[-1]
        jobs = [(t, min(t + 4, steps)) for t in range(0, steps - 1, 2)] * 3
        with store.open() as served:
            serial = [served.query_time_range(t0, t1).reconstruct() for t0, t1 in jobs]
            with ThreadPoolExecutor(max_workers=6) as pool:
                concurrent = list(
                    pool.map(
                        lambda j: served.query_time_range(*j).reconstruct(), jobs
                    )
                )
            threads_seen = {
                r.thread for r in served.stats.records if r.kind == "time_range"
            }
        for a, b in zip(serial, concurrent):
            np.testing.assert_array_equal(a, b)
        assert len(threads_seen) > 1  # genuinely served from multiple threads

    def test_concurrent_mixed_queries(self, temporal, tmp_path) -> None:
        model, store = fitted_store(temporal, tmp_path / "m")
        full = model.result_.reconstruct()

        def job(i: int) -> None:
            with_store = i % 2 == 0
            if with_store:
                t0 = i % 5
                local = served.query_time_range(t0, t0 + 3)
                assert local.shape == temporal.shape[:-1] + (3,)
            else:
                lo = i % 4
                block = served.reconstruct([(lo, lo + 3), None, None])
                np.testing.assert_array_equal(block, full[lo : lo + 3])

        with store.open() as served:
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(job, range(24)))
            assert served.stats.n_queries == 24

    def test_close_releases_engines(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        served = store.open()
        served.query_time_range(0, 4)
        served.close()
        with pytest.raises(StoreError, match="closed"):
            served.query_time_range(0, 4)


class TestFreshProcess:
    def test_saved_model_serves_in_new_process(self, temporal, tmp_path) -> None:
        """Acceptance: fit once, reopen elsewhere, answer within the error bound."""
        model, store = fitted_store(temporal, tmp_path / "m")
        np.save(tmp_path / "x.npy", temporal)
        code = (
            "import sys, numpy as np\n"
            "from repro.store import ModelStore\n"
            "x = np.load(sys.argv[2])\n"
            "with ModelStore(sys.argv[1]).open() as served:\n"
            "    local = served.query_time_range(2, 9)\n"
            "    err = local.error(x[..., 2:9])\n"
            "    bound = served.estimated_error\n"
            "print(err, bound)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, str(store.path), str(tmp_path / "x.npy")],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
        )
        err, bound = (float(v) for v in out.stdout.split())
        assert bound == pytest.approx(model.history_[-1])
        # A local query on fewer timesteps can only fit better (plus slack).
        assert err <= 1.5 * bound


class TestAppend:
    def test_append_extends_without_recompression(self, rng, tmp_path) -> None:
        combined = random_tensor((14, 12, 14), (3, 3, 3), rng=rng, noise=0.05)
        x, block = combined[..., :10], combined[..., 10:]
        model = DTucker(ranks=(3, 3, 3), seed=0).fit(x)
        store = model.save(tmp_path / "m")
        store.append(block, rng=1)
        assert store.shape == (14, 12, 14)
        assert store.manifest["appends"] == 1
        with store.open() as served:
            assert served.shape == (14, 12, 14)
            local = served.query_time_range(10, 14)
            assert local.error(block) < 0.1  # appended range is answerable
            full = served.refit((3, 3, 3))
            assert full.error(combined) < 0.1

    def test_append_shape_mismatch(self, temporal, tmp_path) -> None:
        _, store = fitted_store(temporal, tmp_path / "m")
        with pytest.raises(StoreError, match="every mode but the last"):
            store.append(np.zeros((5, 5, 2)))

    def test_append_rejected_when_temporal_mode_permuted(
        self, temporal, tmp_path
    ) -> None:
        model = DTucker(ranks=(3, 3, 3), seed=0, slice_modes=(0, 2)).fit(temporal)
        store = model.save(tmp_path / "m")
        with pytest.raises(StoreError, match="temporal"):
            store.append(temporal[..., :2])


class TestEstimatorPersistence:
    def test_save_load_refit_equivalent(self, temporal, tmp_path) -> None:
        model, _ = fitted_store(temporal, tmp_path / "m")
        back = DTucker.load(tmp_path / "m")
        assert back.permutation_ == model.permutation_
        assert back.history_ == model.history_
        assert back.converged_ == model.converged_
        assert back.compression_ratio_ == pytest.approx(model.compression_ratio_)
        np.testing.assert_array_equal(
            back.result_.reconstruct(), model.result_.reconstruct()
        )
        np.testing.assert_allclose(
            back.refit((2, 2, 2)).reconstruct(),
            model.refit((2, 2, 2)).reconstruct(),
            atol=1e-10,
        )

    def test_load_restores_timings_summary(self, temporal, tmp_path) -> None:
        model, _ = fitted_store(temporal, tmp_path / "m")
        back = DTucker.load(tmp_path / "m")
        assert back.timings_.phases == pytest.approx(model.timings_.phases)


class TestDirRoundtrips:
    def test_slice_svd_to_from_dir(self, lowrank3, tmp_path) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        ssvd.to_dir(tmp_path / "s")
        for mmap in (False, True):
            back = SliceSVD.from_dir(tmp_path / "s", mmap=mmap)
            np.testing.assert_array_equal(back.u, ssvd.u)
            np.testing.assert_array_equal(back.s, ssvd.s)
            np.testing.assert_array_equal(back.vt, ssvd.vt)
            assert back.shape == ssvd.shape
            assert back.norm_squared == ssvd.norm_squared
            np.testing.assert_array_equal(
                back.slice_norms_squared, ssvd.slice_norms_squared
            )

    def test_tucker_to_from_dir(self, rng, tmp_path) -> None:
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors, elapsed=1.25)
        result.to_dir(tmp_path / "t")
        for mmap in (False, True):
            back = TuckerResult.from_dir(tmp_path / "t", mmap=mmap)
            np.testing.assert_array_equal(back.core, result.core)
            for a, b in zip(back.factors, result.factors):
                np.testing.assert_array_equal(a, b)
            assert back.elapsed == 1.25

    def test_foreign_dir_rejected(self, tmp_path) -> None:
        p = tmp_path / "d"
        p.mkdir()
        (p / "meta.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(StoreFormatError, match="slice-SVD"):
            SliceSVD.from_dir(p)
        with pytest.raises(StoreFormatError, match="Tucker"):
            TuckerResult.from_dir(p)

    def test_missing_payload_typed_error(self, lowrank3, tmp_path) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        ssvd.to_dir(tmp_path / "s")
        (tmp_path / "s" / "vt.npy").unlink()
        with pytest.raises(StoreFormatError, match="vt.npy"):
            SliceSVD.from_dir(tmp_path / "s")

    def test_size_properties(self, lowrank3) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        dense = lowrank3.size * lowrank3.itemsize
        assert ssvd.compression_ratio == pytest.approx(dense / ssvd.nbytes)
        core, factors = random_tucker((12, 10, 8), (3, 2, 2), np.random.default_rng(0))
        result = TuckerResult(core=core, factors=factors)
        assert result.nbytes == core.nbytes + sum(a.nbytes for a in factors)


class TestArchiveErrors:
    def test_missing_factor_key_typed(self, rng, tmp_path) -> None:
        """Truncated Tucker archives raise StoreFormatError, not KeyError."""
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        p = tmp_path / "t.npz"
        np.savez(p, format=np.array("repro.tucker.v1"), core=core, factor_0=factors[0])
        with pytest.raises(StoreFormatError, match="factor_1"):
            read_tucker_archive(p)

    def test_missing_slice_key_typed(self, lowrank3, tmp_path) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        p = tmp_path / "s.npz"
        np.savez(
            p,
            format=np.array("repro.slice_svd.v1"),
            u=ssvd.u,
            s=ssvd.s,
            shape=np.array(ssvd.shape),
            norm_squared=np.array(ssvd.norm_squared),
        )
        with pytest.raises(StoreFormatError, match="vt"):
            read_slice_svd_archive(p)

    def test_not_a_zipfile_typed(self, tmp_path) -> None:
        p = tmp_path / "junk.npz"
        p.write_bytes(b"this is not an archive")
        with pytest.raises(StoreFormatError, match="cannot read"):
            read_slice_svd_archive(p)

    def test_errors_still_catchable_as_shape_error(self, rng, tmp_path) -> None:
        """Back-compat: historical except ShapeError handlers keep working."""
        core, factors = random_tucker((5, 4, 3), (2, 2, 2), rng)
        p = write_tucker_archive(TuckerResult(core=core, factors=factors), tmp_path / "t")
        with pytest.raises(ShapeError):
            read_slice_svd_archive(p)


class TestDeprecatedWrappers:
    def test_wrappers_warn_and_delegate(self, lowrank3, tmp_path) -> None:
        from repro import io

        ssvd = compress(lowrank3, 3, rng=0)
        with pytest.warns(DeprecationWarning, match="save_slice_svd"):
            p = io.save_slice_svd(ssvd, tmp_path / "s")
        with pytest.warns(DeprecationWarning, match="load_slice_svd"):
            back = io.load_slice_svd(p)
        np.testing.assert_array_equal(back.u, ssvd.u)
        # The wrapper and the store function speak the same format.
        np.testing.assert_array_equal(read_slice_svd_archive(p).u, ssvd.u)

    def test_tucker_wrappers_warn(self, rng, tmp_path) -> None:
        from repro import io

        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        with pytest.warns(DeprecationWarning, match="save_tucker"):
            p = io.save_tucker(result, tmp_path / "t")
        with pytest.warns(DeprecationWarning, match="load_tucker"):
            back = io.load_tucker(p)
        np.testing.assert_array_equal(back.core, result.core)

    def test_import_is_silent(self) -> None:
        """Importing repro (and repro.io) must emit no DeprecationWarning."""
        out = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro, repro.io, repro.store",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
        )
        assert out.returncode == 0, out.stderr


class TestPublicSurface:
    def test_reexports(self) -> None:
        import repro

        assert repro.ModelStore is ModelStore
        assert repro.ServedModel is ServedModel
        for name in (
            "ModelStore",
            "ServedModel",
            "ServingStats",
            "StoreError",
            "StoreFormatError",
        ):
            assert name in repro.__all__

    def test_write_then_open_via_top_level(self, temporal, tmp_path) -> None:
        import repro

        model = repro.DTucker(ranks=(3, 3, 3), seed=0).fit(temporal)
        store = model.save(tmp_path / "m")
        assert isinstance(store, repro.ModelStore)
        with repro.ModelStore(tmp_path / "m").open() as served:
            assert isinstance(served, repro.ServedModel)
