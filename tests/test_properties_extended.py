"""Additional property-based tests: streaming, persistence, sparse, refit.

These complement ``test_properties.py`` with invariants that span the
extension modules: streaming must agree with batch compression, archives
must round-trip bit-exactly, sparse and dense compression must agree on the
same data, and refit must be deterministic.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slice_svd import compress
from repro.sparse.coo import SparseTensor


@st.composite
def order3_shapes(draw) -> tuple[int, int, int]:
    return (
        draw(st.integers(3, 8)),
        draw(st.integers(3, 8)),
        draw(st.integers(2, 8)),
    )


class TestAppendEquivalence:
    @given(shape=order3_shapes(), split_seed=st.integers(0, 1000))
    @settings(max_examples=15)
    def test_split_compress_append_is_lossless_consistent(
        self, shape, split_seed
    ) -> None:
        """Compressing two halves and appending equals compressing whole
        (exact SVD path, so no RNG stream differences)."""
        rng = np.random.default_rng(split_seed)
        x = rng.standard_normal(shape)
        t = shape[2]
        cut = 1 + split_seed % max(t - 1, 1)
        k = min(shape[0], shape[1])
        whole = compress(x, k, exact=True)
        merged = compress(x[..., :cut], k, exact=True).append(
            compress(x[..., cut:], k, exact=True)
        )
        np.testing.assert_allclose(merged.u, whole.u, atol=1e-9)
        np.testing.assert_allclose(merged.s, whole.s, atol=1e-9)
        assert merged.shape == whole.shape
        assert np.isclose(merged.norm_squared, whole.norm_squared)


class TestArchiveRoundtrip:
    @given(shape=order3_shapes(), seed=st.integers(0, 1000))
    @settings(max_examples=10)
    def test_slice_svd_bits_preserved(self, shape, seed, tmp_path_factory) -> None:
        from repro.io import load_slice_svd, save_slice_svd

        x = np.random.default_rng(seed).standard_normal(shape)
        k = max(1, min(shape[0], shape[1]) - 1)
        ssvd = compress(x, k, rng=seed)
        path = tmp_path_factory.mktemp("io") / "c.npz"
        back = load_slice_svd(save_slice_svd(ssvd, path))
        np.testing.assert_array_equal(back.u, ssvd.u)
        np.testing.assert_array_equal(back.s, ssvd.s)
        np.testing.assert_array_equal(back.vt, ssvd.vt)


class TestSparseDenseAgreement:
    @given(shape=order3_shapes(), seed=st.integers(0, 1000))
    @settings(max_examples=10)
    def test_sparse_compression_matches_dense_reconstruction(
        self, shape, seed
    ) -> None:
        """Sparse compression of a (fully stored) tensor reconstructs the
        same tensor as dense exact compression."""
        from repro.core.sparse_dtucker import compress_sparse

        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        st_tensor = SparseTensor.from_dense(x)
        k = min(shape[0], shape[1])
        sparse_ssvd = compress_sparse(st_tensor, k, oversampling=k, rng=seed)
        # Full rank ⇒ lossless regardless of the algorithm.
        np.testing.assert_allclose(sparse_ssvd.reconstruct(), x, atol=1e-6)

    @given(shape=order3_shapes(), seed=st.integers(0, 1000))
    @settings(max_examples=10)
    def test_coo_roundtrip(self, shape, seed) -> None:
        x = np.random.default_rng(seed).standard_normal(shape)
        x[x < 0.5] = 0.0
        st_tensor = SparseTensor.from_dense(x)
        np.testing.assert_array_equal(st_tensor.to_dense(), x)
        assert st_tensor.nnz == int(np.count_nonzero(x))


class TestRefitDeterminism:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10)
    def test_refit_is_pure(self, seed) -> None:
        """refit() must not mutate solver state: calling it twice with the
        same ranks gives identical results."""
        from repro.core.dtucker import DTucker
        from repro.tensor.random import random_tensor

        x = random_tensor((10, 9, 8), (3, 3, 3), rng=seed, noise=0.1)
        model = DTucker(ranks=(3, 3, 3), slice_rank=4, seed=seed).fit(x)
        a = model.refit(ranks=(2, 2, 2))
        b = model.refit(ranks=(2, 2, 2))
        np.testing.assert_array_equal(a.core, b.core)
        for fa, fb in zip(a.factors, b.factors):
            np.testing.assert_array_equal(fa, fb)
