"""Tests for the HOOI baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tucker_als import tucker_als
from repro.exceptions import ShapeError
from repro.tensor.random import random_tensor, random_tucker
from repro.tensor.products import tucker_to_tensor
from tests.conftest import assert_orthonormal


class TestTuckerAls:
    def test_exact_on_lowrank(self, lowrank3: np.ndarray) -> None:
        fit = tucker_als(lowrank3, (3, 2, 2))
        assert fit.result.error(lowrank3) < 1e-10

    def test_orthonormal_factors(self, lowrank3) -> None:
        fit = tucker_als(lowrank3, (3, 2, 2))
        for f in fit.result.factors:
            assert_orthonormal(f)

    def test_history_nonincreasing(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.3)
        fit = tucker_als(x, (3, 3, 3), init="random", seed=0, tol=1e-12, max_iters=8)
        assert (np.diff(fit.history) <= 1e-10).all()

    def test_history_matches_final_error(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.1)
        fit = tucker_als(x, (3, 3, 3))
        assert fit.history[-1] == pytest.approx(fit.result.error(x), abs=1e-10)

    def test_max_iters_budget(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.3)
        fit = tucker_als(x, (3, 3, 3), max_iters=2, tol=1e-16, init="random", seed=0)
        assert fit.n_iters == 2 and not fit.converged

    def test_random_init(self, lowrank3) -> None:
        fit = tucker_als(lowrank3, (3, 2, 2), init="random", seed=0, max_iters=60)
        assert fit.result.error(lowrank3) < 1e-8

    def test_explicit_initial_factors(self, rng) -> None:
        x = random_tensor((12, 10, 8), (3, 2, 2), rng=rng)
        _, factors = random_tucker((12, 10, 8), (3, 2, 2), rng)
        fit = tucker_als(x, (3, 2, 2), initial_factors=factors)
        assert fit.result.error(x) < 1e-8

    def test_wrong_initial_factor_count(self, lowrank3, rng) -> None:
        _, factors = random_tucker((12, 10), (3, 2), rng)
        with pytest.raises(ShapeError):
            tucker_als(lowrank3, (3, 2, 2), initial_factors=factors)

    def test_invalid_init_name(self, lowrank3) -> None:
        with pytest.raises(ShapeError):
            tucker_als(lowrank3, (3, 2, 2), init="bogus")

    def test_timing_phases(self, lowrank3) -> None:
        fit = tucker_als(lowrank3, (3, 2, 2))
        assert set(fit.timings.phases) == {"init", "iteration"}

    def test_order4(self, rng) -> None:
        x = random_tensor((8, 7, 5, 4), (2, 2, 2, 2), rng=rng, noise=0.01)
        fit = tucker_als(x, 2)
        assert fit.result.error(x) < 0.01

    def test_matches_best_rank1_for_matrices(self, rng) -> None:
        # Tucker of a matrix at rank (1,1) is the best rank-1 approximation.
        m = rng.standard_normal((10, 8))
        fit = tucker_als(m, (1, 1), max_iters=100, tol=1e-14)
        s = np.linalg.svd(m, compute_uv=False)
        expected_err = float(np.sum(s[1:] ** 2) / np.sum(s**2))
        assert fit.result.error(m) == pytest.approx(expected_err, abs=1e-8)
