"""Tests for slice replacement (SliceSVD.replace) and streaming revision."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slice_svd import compress
from repro.core.streaming import StreamingDTucker
from repro.exceptions import NotFittedError, ShapeError
from repro.tensor.random import random_tensor


class TestSliceNorms:
    def test_compress_records_exact_slice_norms(self, rng) -> None:
        x = rng.standard_normal((10, 8, 6))
        ssvd = compress(x, 4, rng=0)
        assert ssvd.slice_norms_squared is not None
        for l in range(6):
            assert ssvd.slice_norms_squared[l] == pytest.approx(
                float(np.sum(x[:, :, l] ** 2))
            )

    def test_norm_is_sum_of_slice_norms(self, rng) -> None:
        x = rng.standard_normal((10, 8, 6))
        ssvd = compress(x, 4, rng=0)
        assert ssvd.norm_squared == pytest.approx(
            float(ssvd.slice_norms_squared.sum())
        )

    def test_inconsistent_norms_rejected(self, rng) -> None:
        from repro.core.slice_svd import SliceSVD

        x = rng.standard_normal((5, 4, 3))
        ssvd = compress(x, 2, rng=0)
        with pytest.raises(ShapeError, match="inconsistent"):
            SliceSVD(
                u=ssvd.u,
                s=ssvd.s,
                vt=ssvd.vt,
                shape=ssvd.shape,
                norm_squared=ssvd.norm_squared,
                slice_norms_squared=ssvd.slice_norms_squared * 2.0,
            )

    def test_wrong_length_rejected(self, rng) -> None:
        from repro.core.slice_svd import SliceSVD

        x = rng.standard_normal((5, 4, 3))
        ssvd = compress(x, 2, rng=0)
        with pytest.raises(ShapeError):
            SliceSVD(
                u=ssvd.u,
                s=ssvd.s,
                vt=ssvd.vt,
                shape=ssvd.shape,
                norm_squared=ssvd.norm_squared,
                slice_norms_squared=np.ones(5),
            )

    def test_io_roundtrip_preserves_norms(self, rng, tmp_path) -> None:
        from repro.io import load_slice_svd, save_slice_svd

        x = rng.standard_normal((8, 6, 4))
        ssvd = compress(x, 3, rng=0)
        back = load_slice_svd(save_slice_svd(ssvd, tmp_path / "c"))
        np.testing.assert_array_equal(
            back.slice_norms_squared, ssvd.slice_norms_squared
        )

    def test_sparse_compress_records_norms(self, rng) -> None:
        from repro.core.sparse_dtucker import compress_sparse
        from repro.sparse import SparseTensor

        x = rng.standard_normal((8, 6, 4))
        x[np.abs(x) < 0.5] = 0.0
        st = SparseTensor.from_dense(x)
        ssvd = compress_sparse(st, 3, rng=0)
        for l in range(4):
            assert ssvd.slice_norms_squared[l] == pytest.approx(
                float(np.sum(x[:, :, l] ** 2))
            )

    def test_out_of_core_records_norms(self, rng, tmp_path) -> None:
        from repro.core.out_of_core import compress_npy

        x = rng.standard_normal((8, 6, 4))
        p = tmp_path / "x.npy"
        np.save(p, x)
        ssvd = compress_npy(p, 3, rng=0)
        assert ssvd.slice_norms_squared is not None
        assert ssvd.norm_squared == pytest.approx(float(np.sum(x * x)))


class TestReplace:
    def test_replace_matches_recompression(self, rng) -> None:
        x = random_tensor((10, 8, 6), (3, 2, 2), rng=rng, noise=0.1)
        revised = x.copy()
        revised[:, :, 2:4] = rng.standard_normal((10, 8, 2))
        whole = compress(revised, 4, exact=True)
        block = compress(revised[:, :, 2:4], 4, exact=True)
        spliced = compress(x, 4, exact=True).replace(2, block)
        np.testing.assert_allclose(spliced.u, whole.u, atol=1e-9)
        np.testing.assert_allclose(spliced.s, whole.s, atol=1e-9)
        assert spliced.norm_squared == pytest.approx(whole.norm_squared)

    def test_replace_is_pure(self, rng) -> None:
        x = rng.standard_normal((10, 8, 6))
        ssvd = compress(x, 3, rng=0)
        before = ssvd.s.copy()
        block = compress(x[:, :, :2] * 2.0, 3, rng=1)
        ssvd.replace(0, block)
        np.testing.assert_array_equal(ssvd.s, before)

    def test_out_of_bounds(self, rng) -> None:
        x = rng.standard_normal((10, 8, 6))
        ssvd = compress(x, 3, rng=0)
        block = compress(x[:, :, :3], 3, rng=0)
        with pytest.raises(ShapeError):
            ssvd.replace(4, block)  # 4 + 3 > 6

    def test_incompatible_rank(self, rng) -> None:
        x = rng.standard_normal((10, 8, 6))
        ssvd = compress(x, 3, rng=0)
        block = compress(x[:, :, :2], 2, rng=0)
        with pytest.raises(ShapeError):
            ssvd.replace(0, block)

    def test_requires_slice_norms(self, rng) -> None:
        from repro.core.slice_svd import SliceSVD

        x = rng.standard_normal((10, 8, 6))
        full = compress(x, 3, rng=0)
        legacy = SliceSVD(
            u=full.u, s=full.s, vt=full.vt, shape=full.shape,
            norm_squared=full.norm_squared,
        )
        block = compress(x[:, :, :2], 3, rng=0)
        with pytest.raises(ShapeError, match="per-slice norms"):
            legacy.replace(0, block)


class TestStreamingRevise:
    def test_revise_improves_on_corrected_data(self, rng) -> None:
        x = random_tensor((14, 12, 20), (3, 3, 3), rng=rng, noise=0.02)
        corrupted = x.copy()
        corrupted[..., 5:8] = rng.standard_normal((14, 12, 3)) * 2.0

        s = StreamingDTucker(ranks=(3, 3, 3), seed=0, sweeps_per_update=8)
        s.partial_fit(corrupted)
        err_corrupted = s.result_.error(x)
        s.revise(5, x[..., 5:8])
        err_revised = s.result_.error(x)
        assert err_revised < err_corrupted
        assert err_revised < 0.01

    def test_revise_norm_bookkeeping(self, rng) -> None:
        x = random_tensor((10, 8, 12), (2, 2, 2), rng=rng, noise=0.05)
        s = StreamingDTucker(ranks=(2, 2, 2), seed=0)
        s.partial_fit(x)
        new_block = rng.standard_normal((10, 8, 4))
        s.revise(3, new_block)
        expected = x.copy()
        expected[..., 3:7] = new_block
        assert s.slice_svd_.norm_squared == pytest.approx(
            float(np.sum(expected**2))
        )

    def test_revise_order4_slice_mapping(self, rng) -> None:
        x = random_tensor((8, 7, 3, 6), (2, 2, 2, 2), rng=rng, noise=0.05)
        s = StreamingDTucker(ranks=(2, 2, 2, 2), seed=0)
        s.partial_fit(x)
        new_block = rng.standard_normal((8, 7, 3, 2))
        s.revise(1, new_block)
        expected = x.copy()
        expected[..., 1:3] = new_block
        assert s.slice_svd_.norm_squared == pytest.approx(
            float(np.sum(expected**2))
        )

    def test_revise_before_fit(self) -> None:
        s = StreamingDTucker(ranks=(2, 2, 2))
        with pytest.raises(NotFittedError):
            s.revise(0, np.ones((4, 4, 2)))

    def test_revise_out_of_range(self, rng) -> None:
        x = random_tensor((10, 8, 6), (2, 2, 2), rng=rng)
        s = StreamingDTucker(ranks=(2, 2, 2), seed=0).partial_fit(x)
        with pytest.raises(ShapeError):
            s.revise(5, np.ones((10, 8, 3)))

    def test_revise_wrong_shape(self, rng) -> None:
        x = random_tensor((10, 8, 6), (2, 2, 2), rng=rng)
        s = StreamingDTucker(ranks=(2, 2, 2), seed=0).partial_fit(x)
        with pytest.raises(ShapeError):
            s.revise(0, np.ones((10, 7, 2)))
