"""Tests for the pluggable execution engine (`repro.engine`).

Covers the three backends (parity against serial for fixed seeds), the
chunk-planning policy and its edge cases, backend resolution (names, env
override, instance ownership), phase tracing, the ``FitLike`` protocol,
and the ``config=`` deprecation shims on the solver entry points.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.baselines import mach_tucker, rtd, tucker_als, tucker_ts, tucker_ttmts
from repro.baselines._common import BaselineFit
from repro.core.config import DTuckerConfig, resolve_config
from repro.core.dtucker import DTucker
from repro.core.protocol import FitLike
from repro.core.result import TuckerResult
from repro.core.slice_svd import compress
from repro.engine import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_scope,
    chunked,
    concat_chunks,
    format_traces,
    plan_chunks,
    resolve_backend,
)
from repro.exceptions import BackendError, ShapeError
from repro.tensor.random import random_tensor


def _double_chunk(rows: np.ndarray, *, scale: float) -> np.ndarray:
    """Module-level kernel (picklable) for chunked-dispatch tests."""
    return rows * scale


def _pair_chunk(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return rows + 1.0, np.sum(rows, axis=tuple(range(1, rows.ndim)))


class TestPlanChunks:
    def test_serial_single_chunk(self) -> None:
        assert plan_chunks(17, 1) == [(0, 17)]

    def test_even_split(self) -> None:
        assert plan_chunks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_covers_range(self) -> None:
        plan = plan_chunks(10, 3)
        assert plan[0][0] == 0 and plan[-1][1] == 10
        assert all(a < b for a, b in plan)
        # Contiguous, non-overlapping.
        assert all(plan[i][1] == plan[i + 1][0] for i in range(len(plan) - 1))

    def test_fewer_items_than_workers(self) -> None:
        plan = plan_chunks(2, 8)
        assert plan == [(0, 1), (1, 2)]  # no empty chunks

    def test_explicit_chunk_size_with_remainder(self) -> None:
        assert plan_chunks(7, 4, chunk_size=3) == [(0, 3), (3, 6), (6, 7)]

    def test_zero_items(self) -> None:
        assert plan_chunks(0, 4) == []

    def test_invalid(self) -> None:
        with pytest.raises(ShapeError):
            plan_chunks(-1, 2)
        with pytest.raises(ShapeError):
            plan_chunks(4, 0)
        with pytest.raises(ShapeError):
            plan_chunks(4, 2, chunk_size=0)


class TestResolveBackend:
    def test_names(self) -> None:
        assert set(BACKEND_NAMES) == {"serial", "thread", "process"}
        for name in BACKEND_NAMES:
            with backend_scope(name) as eng:
                assert eng.name == name

    def test_unknown_name(self) -> None:
        with pytest.raises(BackendError):
            resolve_backend("gpu")

    def test_instance_passthrough_not_closed(self) -> None:
        eng = SerialBackend()
        with backend_scope(eng) as inner:
            assert inner is eng
        # A user-supplied instance survives the scope (ownership rule).
        assert eng.map(lambda v: v + 1, [1, 2]) == [2, 3]

    def test_auto_honours_env(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        eng = resolve_backend("auto")
        try:
            assert isinstance(eng, ThreadBackend)
        finally:
            eng.close()
        monkeypatch.delenv("REPRO_BACKEND")
        eng = resolve_backend(None)
        assert isinstance(eng, SerialBackend)

    def test_workers_from_env(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_WORKERS", "3")
        eng = resolve_backend("thread")
        try:
            assert eng.n_workers == 3
        finally:
            eng.close()
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with pytest.raises(BackendError):
            resolve_backend("thread")

    def test_serial_is_always_single_worker(self) -> None:
        assert SerialBackend(n_workers=8).n_workers == 1

    def test_config_supplies_defaults(self) -> None:
        cfg = DTuckerConfig(backend="thread", n_workers=2, chunk_size=5)
        with backend_scope(config=cfg) as eng:
            assert isinstance(eng, ThreadBackend)
            assert eng.n_workers == 2
            assert eng.chunk_size == 5


class TestChunkedDispatch:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_matches_inline(self, name: str, rng: np.random.Generator) -> None:
        slab = rng.standard_normal((13, 4, 3))
        with backend_scope(name, n_workers=2, chunk_size=4) as eng:
            out = chunked(
                eng,
                _double_chunk,
                slab.shape[0],
                slabs=(slab,),
                broadcast={"scale": 2.0},
                reduce=concat_chunks,
            )
        np.testing.assert_array_equal(out, slab * 2.0)

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_tuple_outputs_concat_positionwise(
        self, name: str, rng: np.random.Generator
    ) -> None:
        slab = rng.standard_normal((9, 5))
        with backend_scope(name, n_workers=3, chunk_size=2) as eng:
            a, b = chunked(
                eng,
                _pair_chunk,
                slab.shape[0],
                slabs=(slab,),
                reduce=concat_chunks,
            )
        np.testing.assert_array_equal(a, slab + 1.0)
        np.testing.assert_allclose(b, slab.sum(axis=1))

    def test_fewer_items_than_workers(self, rng: np.random.Generator) -> None:
        slab = rng.standard_normal((2, 3, 3))
        with backend_scope("thread", n_workers=8) as eng:
            out = chunked(
                eng,
                _double_chunk,
                2,
                slabs=(slab,),
                broadcast={"scale": -1.0},
                reduce=concat_chunks,
            )
        np.testing.assert_array_equal(out, -slab)

    def test_indivisible_chunking(self, rng: np.random.Generator) -> None:
        slab = rng.standard_normal((7, 2))
        with backend_scope("process", n_workers=2, chunk_size=3) as eng:
            out = chunked(
                eng,
                _double_chunk,
                7,
                slabs=(slab,),
                broadcast={"scale": 3.0},
                reduce=concat_chunks,
            )
        np.testing.assert_array_equal(out, slab * 3.0)

    def test_concat_requires_chunks(self) -> None:
        with pytest.raises(ValueError):
            concat_chunks([])

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_map_preserves_order(self, name: str) -> None:
        with backend_scope(name, n_workers=2) as eng:
            assert eng.map(abs, [-3, 1, -2, 0]) == [3, 1, 2, 0]


class TestBackendParity:
    """Serial, thread and process backends must agree bit-for-bit."""

    def test_compress_parity(self) -> None:
        x = random_tensor((14, 12, 9), (4, 3, 3), rng=7, noise=0.05)
        ref = compress(x, 4, rng=0)
        for name in ("thread", "process"):
            with backend_scope(name, n_workers=2, chunk_size=3) as eng:
                got = compress(x, 4, engine=eng, rng=0)
            np.testing.assert_array_equal(got.u, ref.u)
            np.testing.assert_array_equal(got.s, ref.s)
            np.testing.assert_array_equal(got.vt, ref.vt)

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_dtucker_factors_parity(self, name: str) -> None:
        x = random_tensor((12, 11, 8), (3, 3, 2), rng=3, noise=0.01)
        cfg = DTuckerConfig(seed=5)
        ref = DTucker((3, 3, 2), config=cfg).fit(x).result_
        par = DTucker(
            (3, 3, 2),
            config=DTuckerConfig(seed=5, backend=name, n_workers=2, chunk_size=4),
        ).fit(x).result_
        np.testing.assert_array_equal(par.core, ref.core)
        for a, b in zip(par.factors, ref.factors):
            np.testing.assert_array_equal(a, b)


class TestPhaseTraces:
    def test_dtucker_attaches_traces(self) -> None:
        x = random_tensor((10, 9, 8), (3, 3, 3), rng=2, noise=0.0)
        model = DTucker(
            (3, 3, 3), config=DTuckerConfig(seed=0, backend="serial")
        ).fit(x)
        phases = [t.phase for t in model.result_.trace_]
        assert "approximation" in phases
        assert "iteration" in phases
        text = format_traces(model.result_.trace_)
        assert "approximation" in text and "backend=serial" in text

    def test_trace_records_tasks_and_chunks(self) -> None:
        x = random_tensor((10, 9, 16), (3, 3, 3), rng=2, noise=0.0)
        with backend_scope("thread", n_workers=2, chunk_size=4) as eng:
            compress(x, 3, engine=eng, rng=0)
            (trace,) = eng.traces
        assert trace.backend == "thread"
        assert trace.n_workers == 2
        assert trace.n_tasks == 4  # 16 slices / chunk_size 4
        assert trace.chunk_sizes == [4]  # distinct sizes, first-seen order
        assert sum(trace.tasks_per_worker.values()) == trace.n_tasks
        assert trace.seconds >= 0.0

    def test_persistent_engine_accumulates_per_fit(self) -> None:
        x = random_tensor((9, 8, 7), (2, 2, 2), rng=1, noise=0.0)
        eng = SerialBackend()
        m1 = DTucker((2, 2, 2), seed=0, engine=eng).fit(x)
        m2 = DTucker((2, 2, 2), seed=0, engine=eng).fit(x)
        # Each fit only keeps its own slice of the shared engine's history.
        assert len(m1.trace_) == len(m2.trace_)
        assert len(eng.traces) == len(m1.trace_) + len(m2.trace_)
        eng.close()


class TestFitLikeProtocol:
    def test_tucker_result_is_fitlike(self) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        res = DTucker((2, 2, 2), seed=0).fit(x).result_
        assert isinstance(res, FitLike)
        assert res.elapsed > 0.0
        assert np.isfinite(res.error(x))

    def test_baseline_fit_is_fitlike(self) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        fit = tucker_als(x, (2, 2, 2), config=DTuckerConfig(max_iters=2, seed=0))
        assert isinstance(fit, FitLike)
        assert fit.core.shape == (2, 2, 2)
        assert len(fit.factors) == 3
        assert fit.elapsed >= 0.0
        assert np.isfinite(fit.error(x))

    def test_protocol_surfaces_agree(self) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        fit = tucker_als(x, (2, 2, 2), config=DTuckerConfig(max_iters=2, seed=0))
        assert fit.error(x) == fit.result.error(x)
        assert fit.core is fit.result.core


class TestDeprecationShims:
    def test_resolve_config_warns_once_per_call(self) -> None:
        with pytest.warns(DeprecationWarning, match="tucker_als.*max_iters"):
            cfg = resolve_config(None, where="tucker_als", max_iters=3)
        assert cfg.max_iters == 3

    def test_unset_kwargs_do_not_warn(self) -> None:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = resolve_config(DTuckerConfig(tol=1e-6), where="x")
        assert cfg.tol == 1e-6

    def test_dtucker_legacy_kwargs(self) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        with pytest.warns(DeprecationWarning, match="DTucker"):
            legacy = DTucker((2, 2, 2), seed=0, max_iters=3, tol=1e-7)
        modern = DTucker((2, 2, 2), config=DTuckerConfig(seed=0, max_iters=3, tol=1e-7))
        np.testing.assert_array_equal(
            legacy.fit(x).result_.core, modern.fit(x).result_.core
        )

    @pytest.mark.parametrize(
        "fn,kwargs",
        [
            (tucker_als, {"max_iters": 2}),
            (mach_tucker, {"tol": 1e-3}),
            (rtd, {"oversampling": 4}),
            (tucker_ts, {"max_iters": 2}),
            (tucker_ttmts, {"max_iters": 2}),
        ],
    )
    def test_baseline_legacy_kwargs_warn_but_work(self, fn, kwargs) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        with pytest.warns(DeprecationWarning, match=fn.__name__):
            fit = fn(x, (2, 2, 2), seed=0, **kwargs)
        assert isinstance(fit, BaselineFit)

    def test_baseline_config_path_is_warning_free(self) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        cfg = DTuckerConfig(seed=0, max_iters=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tucker_als(x, (2, 2, 2), config=cfg)
            mach_tucker(x, (2, 2, 2), config=cfg)
            rtd(x, (2, 2, 2), config=cfg)
            tucker_ts(x, (2, 2, 2), config=cfg)
            tucker_ttmts(x, (2, 2, 2), config=cfg)

    def test_seed_stays_first_class(self) -> None:
        x = random_tensor((8, 7, 6), (2, 2, 2), rng=0, noise=0.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            a = rtd(x, (2, 2, 2), seed=11)
            b = rtd(x, (2, 2, 2), config=DTuckerConfig(seed=11))
        np.testing.assert_array_equal(a.core, b.core)


class TestConfigBackendFields:
    def test_invalid_backend_name_rejected(self) -> None:
        with pytest.raises(BackendError):
            DTuckerConfig(backend="cluster")

    @pytest.mark.parametrize(
        "kwargs", [{"n_workers": 0}, {"chunk_size": 0}, {"n_workers": -2}]
    )
    def test_invalid_execution_knobs(self, kwargs: dict) -> None:
        with pytest.raises(ShapeError):
            DTuckerConfig(**kwargs)

    def test_with_overrides(self) -> None:
        cfg = DTuckerConfig().with_overrides(backend="process", n_workers=4)
        assert cfg.backend == "process" and cfg.n_workers == 4
        assert DTuckerConfig().with_overrides() == DTuckerConfig()


class TestEnvBackendEndToEnd:
    def test_suite_level_override(self, monkeypatch: pytest.MonkeyPatch) -> None:
        # REPRO_BACKEND switches a default-config fit without code changes.
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = random_tensor((10, 9, 8), (3, 3, 3), rng=4, noise=0.0)
        model = DTucker((3, 3, 3), seed=0).fit(x)
        assert all(t.backend == "thread" for t in model.trace_)
        monkeypatch.delenv("REPRO_BACKEND")
        monkeypatch.delenv("REPRO_WORKERS")
        ref = DTucker((3, 3, 3), seed=0).fit(x)
        np.testing.assert_array_equal(model.result_.core, ref.result_.core)
