"""Tests for QR helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.qr import economy_qr, orthonormalize
from tests.conftest import assert_orthonormal


class TestEconomyQr:
    def test_reconstruction(self, rng) -> None:
        a = rng.standard_normal((9, 4))
        q, r = economy_qr(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    def test_q_orthonormal(self, rng) -> None:
        q, _ = economy_qr(rng.standard_normal((9, 4)))
        assert_orthonormal(q)

    def test_positive_diagonal(self, rng) -> None:
        for seed in range(5):
            _, r = economy_qr(np.random.default_rng(seed).standard_normal((7, 5)))
            assert (np.diagonal(r) >= 0).all()

    def test_r_upper_triangular(self, rng) -> None:
        _, r = economy_qr(rng.standard_normal((6, 4)))
        np.testing.assert_allclose(r, np.triu(r), atol=1e-12)

    def test_deterministic_for_same_input(self, rng) -> None:
        a = rng.standard_normal((6, 3))
        q1, r1 = economy_qr(a)
        q2, r2 = economy_qr(a.copy())
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_array_equal(r1, r2)

    def test_wide_matrix(self, rng) -> None:
        a = rng.standard_normal((3, 7))
        q, r = economy_qr(a)
        assert q.shape == (3, 3) and r.shape == (3, 7)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)


class TestOrthonormalize:
    def test_spans_same_space(self, rng) -> None:
        a = rng.standard_normal((10, 3))
        q = orthonormalize(a)
        assert_orthonormal(q)
        # a lies in span(q): projecting a onto q loses nothing.
        np.testing.assert_allclose(q @ (q.T @ a), a, atol=1e-10)

    def test_already_orthonormal_unchanged_up_to_sign(self, rng) -> None:
        q0 = np.linalg.qr(rng.standard_normal((8, 3)))[0]
        q = orthonormalize(q0)
        np.testing.assert_allclose(np.abs(q.T @ q0), np.eye(3), atol=1e-10)
