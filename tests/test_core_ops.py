"""Direct tests of the compressed-domain TTM kernels in repro.core._ops.

Each kernel must agree with the corresponding dense TTM chain when the
compression is exact (full slice rank) — these are the identities the whole
iteration phase stands on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._ops import (
    mode1_partial,
    mode2_partial,
    project_left,
    project_right,
    w_tensor,
)
from repro.core.slice_svd import compress
from repro.tensor.products import mode_product
from repro.tensor.random import random_orthonormal


@pytest.fixture
def setup(rng):
    x = rng.standard_normal((9, 7, 4, 3))
    ssvd = compress(x, 7, exact=True)  # full rank: lossless
    a1 = random_orthonormal(9, 3, rng)
    a2 = random_orthonormal(7, 2, rng)
    return x, ssvd, a1, a2


class TestProjections:
    def test_project_left_shape_and_value(self, setup) -> None:
        x, ssvd, a1, _ = setup
        au = project_left(ssvd, a1)
        assert au.shape == (12, 3, 7)
        for l in range(12):
            np.testing.assert_allclose(au[l], a1.T @ ssvd.u[l], atol=1e-12)

    def test_project_right_shape_and_value(self, setup) -> None:
        x, ssvd, _, a2 = setup
        av = project_right(ssvd, a2)
        assert av.shape == (12, 7, 2)
        for l in range(12):
            np.testing.assert_allclose(av[l], ssvd.vt[l] @ a2, atol=1e-12)


class TestWTensor:
    def test_equals_dense_double_projection(self, setup) -> None:
        x, ssvd, a1, a2 = setup
        w = w_tensor(ssvd, a1, a2)
        expected = mode_product(
            mode_product(x, a1, 0, transpose=True), a2, 1, transpose=True
        )
        assert w.shape == (3, 2, 4, 3)
        np.testing.assert_allclose(w, expected, atol=1e-8)

    def test_order2(self, rng) -> None:
        m = rng.standard_normal((8, 6))
        ssvd = compress(m, 6, exact=True)
        a1 = random_orthonormal(8, 2, rng)
        a2 = random_orthonormal(6, 2, rng)
        np.testing.assert_allclose(
            w_tensor(ssvd, a1, a2), a1.T @ m @ a2, atol=1e-8
        )


class TestPartials:
    def test_mode1_partial_equals_dense(self, setup) -> None:
        x, ssvd, _, a2 = setup
        z = mode1_partial(ssvd, a2)
        expected = mode_product(x, a2, 1, transpose=True)
        assert z.shape == (9, 2, 4, 3)
        np.testing.assert_allclose(z, expected, atol=1e-8)

    def test_mode2_partial_equals_dense(self, setup) -> None:
        x, ssvd, a1, _ = setup
        z = mode2_partial(ssvd, a1)
        expected = mode_product(x, a1, 0, transpose=True)
        assert z.shape == (3, 7, 4, 3)
        np.testing.assert_allclose(z, expected, atol=1e-8)

    def test_partials_consistent_with_w(self, setup) -> None:
        # Projecting the mode-1 partial with A(1)ᵀ must give W.
        x, ssvd, a1, a2 = setup
        via_partial = mode_product(mode1_partial(ssvd, a2), a1, 0, transpose=True)
        np.testing.assert_allclose(via_partial, w_tensor(ssvd, a1, a2), atol=1e-8)


class TestLossyConsistency:
    def test_kernels_agree_with_reconstructed_tensor(self, rng) -> None:
        # With lossy compression the kernels must match the TTM chains of
        # the *reconstructed* tensor X̃ exactly (that is what they compute).
        x = rng.standard_normal((10, 8, 5))
        ssvd = compress(x, 3, rng=0)
        xt = ssvd.reconstruct()
        a1 = random_orthonormal(10, 2, rng)
        a2 = random_orthonormal(8, 2, rng)
        np.testing.assert_allclose(
            w_tensor(ssvd, a1, a2),
            mode_product(mode_product(xt, a1, 0, transpose=True), a2, 1, transpose=True),
            atol=1e-8,
        )
        np.testing.assert_allclose(
            mode1_partial(ssvd, a2),
            mode_product(xt, a2, 1, transpose=True),
            atol=1e-8,
        )
