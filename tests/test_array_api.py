"""Tests for the pluggable array-namespace layer (``repro.engine.array_api``).

Strategy: torch/CuPy are optional extras that are typically absent in CI,
so the generic :class:`ArrayModule` code paths are exercised here through a
*pseudo-device* — a generic (non-subclassed) module wrapped around NumPy
itself, with the native-capability flags forced off.  That runs exactly the
emulation code a torch/strict namespace would run (``permute_dims`` reshape,
generic einsum contraction, ``concat``-based ``out=``), while every result
can be compared elementwise against the literal NumPy expression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DTuckerConfig
from repro.core.initialization import initialize
from repro.core.iteration import als_sweeps
from repro.core.slice_svd import compress
from repro.engine import SerialBackend
from repro.engine.array_api import (
    DEVICE_NAMES,
    NUMPY,
    ArrayModule,
    array_module_of,
    get_module,
    probe_namespaces,
    resolve_device,
)
from repro.engine.array_api import _MODULES
from repro.engine.trace import PhaseTrace
from repro.exceptions import BackendError
from repro.kernels import BufferPool, KernelStats, SweepWorkspace
from repro.kernels.compress_plan import (
    estimate_costs,
    estimate_device_costs,
    execute_plan,
    plan_compression,
    plan_from_config,
)
from repro.tensor.random import random_tensor


@pytest.fixture
def generic():
    """A generic ArrayModule over NumPy with all native shortcuts disabled.

    Runs the exact emulation branches a capability-poor namespace (the
    array-API standard) would take, on arrays we can compare bit-for-bit.
    """
    am = ArrayModule("generic-test", np)
    am.caps["native_einsum"] = False
    am.caps["native_kron"] = False
    return am


@pytest.fixture
def registered_generic(generic):
    """Temporarily register the generic module as a resolvable device."""
    _MODULES["generic-test"] = generic
    yield generic
    _MODULES.pop("generic-test", None)


# ---------------------------------------------------------------------------
# resolution & probing
# ---------------------------------------------------------------------------


class TestResolution:
    def test_default_is_numpy(self) -> None:
        am = resolve_device(None)
        assert am is NUMPY
        assert am.is_numpy

    def test_cpu_and_numpy_aliases(self) -> None:
        assert resolve_device("cpu") is NUMPY
        assert resolve_device("numpy") is NUMPY
        assert get_module("numpy") is NUMPY
        assert get_module("cpu") is NUMPY

    def test_module_passthrough(self, generic) -> None:
        assert resolve_device(generic) is generic

    def test_config_device_flows(self) -> None:
        cfg = DTuckerConfig(device="cpu")
        assert resolve_device(None, config=cfg) is NUMPY
        assert resolve_device("auto", config=cfg) is NUMPY

    def test_env_var_flows(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_DEVICE", "cpu")
        assert resolve_device(None) is NUMPY
        monkeypatch.setenv("REPRO_DEVICE", "nonsense")
        with pytest.raises(BackendError):
            resolve_device(None)

    def test_unknown_name_raises(self) -> None:
        with pytest.raises(BackendError, match="unknown device"):
            resolve_device("quantum")

    def test_config_rejects_unknown_device(self) -> None:
        with pytest.raises(BackendError):
            DTuckerConfig(device="quantum")

    def test_device_names_cover_config_choices(self) -> None:
        for name in ("auto", "cpu", "cuda", "numpy", "torch", "cupy"):
            assert name in DEVICE_NAMES

    def test_probe_reports_numpy(self) -> None:
        probed = probe_namespaces(refresh=True)
        assert probed["numpy"] is True
        assert set(probed) == {"numpy", "torch", "cupy", "array_api_strict"}

    def test_missing_namespace_message_is_actionable(self) -> None:
        probed = probe_namespaces()
        if probed["torch"]:  # pragma: no cover - torch present in some envs
            pytest.skip("torch installed; the missing-extra path is moot")
        with pytest.raises(BackendError, match="torch"):
            resolve_device("torch")

    def test_cuda_without_accelerator_raises(self) -> None:
        probed = probe_namespaces()
        if probed["torch"] or probed["cupy"]:  # pragma: no cover
            pytest.skip("a CUDA-capable namespace is importable here")
        with pytest.raises(BackendError, match="cuda"):
            resolve_device("cuda")

    def test_array_module_of_host_inputs(self) -> None:
        assert array_module_of(np.ones(3)) is NUMPY
        assert array_module_of([1, 2], 3.0, None) is NUMPY
        assert array_module_of() is NUMPY


# ---------------------------------------------------------------------------
# generic facade vs literal NumPy
# ---------------------------------------------------------------------------


EINSUM_CASES = [
    # The contraction patterns the kernels actually dispatch.
    ("lij,jk->lik", [(4, 5, 3), (3, 2)]),
    ("ji,ljk->lik", [(5, 2), (4, 5, 3)]),
    ("lij,lj,ljk->lik", [(4, 5, 3), (4, 3), (4, 3, 2)]),
    ("aj,lak->ljk", [(5, 2), (4, 5, 3)]),
    ("ij,ij->", [(6, 7), (6, 7)]),
    ("lij->l", [(4, 3, 2)]),
]


class TestGenericFacade:
    @pytest.mark.parametrize("subscripts,shapes", EINSUM_CASES)
    def test_generic_einsum_matches_numpy(self, generic, subscripts, shapes) -> None:
        rng = np.random.default_rng(0)
        ops = [rng.standard_normal(s) for s in shapes]
        want = np.einsum(subscripts, *ops)
        got = generic.einsum(subscripts, *ops)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_generic_einsum_out(self, generic) -> None:
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((4, 5, 3)), rng.standard_normal((3, 2))
        out = np.empty((4, 5, 2))
        res = generic.einsum("lij,jk->lik", a, b, out=out)
        assert res is out
        np.testing.assert_allclose(out, np.einsum("lij,jk->lik", a, b))

    @pytest.mark.parametrize(
        "shape,new",
        [((6, 4), (4, 6)), ((3, 4, 5), (12, 5)), ((3, 4, 5), (5, -1)), ((2, 3, 4, 5), (6, 20))],
    )
    def test_forder_reshape(self, generic, shape, new) -> None:
        x = np.arange(int(np.prod(shape)), dtype=float).reshape(shape)
        want = np.reshape(x, new, order="F")
        got = generic.reshape(x, new, order="F")
        np.testing.assert_array_equal(got, want)

    def test_corder_reshape(self, generic) -> None:
        x = np.arange(24.0).reshape(2, 3, 4)
        np.testing.assert_array_equal(
            generic.reshape(x, (6, 4)), x.reshape(6, 4)
        )

    def test_axis_moves(self, generic) -> None:
        x = np.arange(24.0).reshape(2, 3, 4)
        np.testing.assert_array_equal(generic.moveaxis(x, 0, 2), np.moveaxis(x, 0, 2))
        np.testing.assert_array_equal(generic.swapaxes(x, 0, 1), np.swapaxes(x, 0, 1))
        np.testing.assert_array_equal(generic.mT(x), np.swapaxes(x, -1, -2))

    def test_kron_emulation(self, generic) -> None:
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((2, 5))
        np.testing.assert_allclose(generic.kron(a, b), np.kron(a, b))

    def test_concatenate_out(self, generic) -> None:
        parts = [np.ones((2, 3)), 2.0 * np.ones((3, 3))]
        out = np.empty((5, 3))
        res = generic.concatenate(parts, axis=0, out=out)
        assert res is out
        np.testing.assert_array_equal(out, np.concatenate(parts, axis=0))

    def test_take_flat_and_diagonal(self, generic) -> None:
        x = np.arange(20.0).reshape(4, 5)
        idx = np.array([0, 7, 19])
        np.testing.assert_array_equal(generic.take_flat(x, idx), x.ravel()[idx])
        np.testing.assert_array_equal(generic.diagonal(x), np.diagonal(x))

    def test_transfers_round_trip_and_copy(self, generic) -> None:
        x = np.arange(12.0).reshape(3, 4)
        dev = generic.to_device(x)
        back = generic.from_device(dev)
        np.testing.assert_array_equal(back, x)
        back[0, 0] = -1.0  # independent copy: the "device" array is untouched
        assert dev[0, 0] == 0.0

    def test_to_device_dtype_cast(self, generic) -> None:
        x = np.arange(6.0)
        assert generic.to_device(x, dtype=np.float32).dtype == np.float32

    def test_host_rng_determinism(self, generic) -> None:
        draw_a = generic.standard_normal((3, 4), np.float64, np.random.default_rng(7))
        draw_b = np.random.default_rng(7).standard_normal((3, 4))
        np.testing.assert_array_equal(generic.from_device(draw_a), draw_b)

    def test_float64_accumulators(self, generic) -> None:
        x = np.random.default_rng(3).standard_normal((50, 40)).astype(np.float32)
        assert generic.sum_float64(x) == pytest.approx(float(x.astype(np.float64).sum()))
        assert generic.vdot_float64(x) == pytest.approx(
            float(np.vdot(x.astype(np.float64), x.astype(np.float64)))
        )

    def test_numpy_module_is_literal(self) -> None:
        rng = np.random.default_rng(4)
        a = rng.standard_normal((6, 4))
        u1, s1, v1 = NUMPY.svd(a, full_matrices=False)
        u2, s2, v2 = np.linalg.svd(a, full_matrices=False)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(v1, v2)
        b = rng.standard_normal((4, 3))
        np.testing.assert_array_equal(NUMPY.matmul(a, b), a @ b)
        out = np.empty((6, 3))
        NUMPY.gemm_into(a, b, out)
        np.testing.assert_array_equal(out, a @ b)

    def test_nbytes_and_np_dtype(self, generic) -> None:
        x = np.zeros((3, 5), dtype=np.float32)
        assert generic.nbytes(x) == x.nbytes
        assert generic.np_dtype(x) == np.float32


# ---------------------------------------------------------------------------
# transfer accounting
# ---------------------------------------------------------------------------


class TestXferAccounting:
    def test_kernel_stats_record_transfer(self) -> None:
        stats = KernelStats()
        stats.record_transfer("h2d", 1024)
        stats.record_transfer("h2d", 1024)
        stats.record_transfer("d2h", 512)
        assert stats.bytes_h2d == 2048
        assert stats.bytes_d2h == 512
        assert stats.counts["xfer:h2d"][1] == 2
        assert stats.counts["xfer:d2h"][1] == 1
        assert "xfer=" in stats.summary()

    def test_kernel_stats_delta_and_copy(self) -> None:
        stats = KernelStats()
        stats.record_transfer("h2d", 100)
        before = stats.copy()
        stats.record_transfer("h2d", 50)
        stats.record_transfer("d2h", 25)
        d = stats.delta(before)
        assert d.bytes_h2d == 50
        assert d.bytes_d2h == 25

    def test_phase_trace_xfer_summary(self) -> None:
        tr = PhaseTrace(phase="iteration", backend="serial", n_workers=1)
        tr.annotate_xfer(h2d_bytes=3 * 2**20, d2h_bytes=2**20, device="generic-test")
        line = tr.summary()
        assert "device=generic-test" in line
        assert "xfer=3.0MiB>/1.0MiB<" in line

    def test_phase_trace_cpu_has_no_xfer_segment(self) -> None:
        tr = PhaseTrace(phase="iteration", backend="serial", n_workers=1)
        assert "xfer=" not in tr.summary()


# ---------------------------------------------------------------------------
# device-aware planning
# ---------------------------------------------------------------------------


class TestDevicePlanning:
    def test_cpu_plan_is_unchanged(self) -> None:
        plan = plan_compression(64, 48, 8)
        assert plan.device == "cpu"
        assert plan.device_costs == {}
        assert plan.as_dict()["device"] == "cpu"

    def test_estimate_device_costs_ranking(self) -> None:
        # Compute-dominated: a big exact SVD amortises the transfer.
        big = estimate_device_costs(
            2048, 2048, 32, method_cost=estimate_costs(2048, 2048, 32)["exact"]
        )
        assert big["cuda"] < big["cpu"]
        # Transfer-dominated: a tiny gram factorization is not worth the trip.
        small = estimate_device_costs(
            16, 16, 4, method_cost=estimate_costs(16, 16, 4)["gram"]
        )
        assert small["cpu"] < small["cuda"]

    def test_device_costs_scale_with_slices(self) -> None:
        one = estimate_device_costs(128, 96, 8, method_cost=1e6, n_slices=1)
        ten = estimate_device_costs(128, 96, 8, method_cost=1e6, n_slices=10)
        assert ten["cpu"] == pytest.approx(10 * one["cpu"])
        assert ten["cuda"] == pytest.approx(10 * one["cuda"])

    def test_auto_strategy_places_by_cost(self) -> None:
        heavy = plan_compression(
            2048, 2048, 32, strategy="auto", exact_slice_svd=True, device="cuda"
        )
        assert heavy.device == "cuda"
        assert set(heavy.device_costs) == {"cpu", "cuda"}
        light = plan_compression(16, 16, 4, strategy="auto", device="cuda")
        assert light.device == "cpu"
        assert light.device_costs  # the offer was considered, not ignored

    def test_explicit_strategy_honours_offered_device(self) -> None:
        plan = plan_compression(16, 16, 4, strategy="gram", device="cuda")
        assert plan.device == "cuda"

    def test_auto_device_spec_normalises_to_cpu(self) -> None:
        for spec in ("auto", "numpy", ""):
            assert plan_compression(32, 32, 4, device=spec).device == "cpu"

    def test_plan_from_config_default_is_cpu(self) -> None:
        plan = plan_from_config(32, 24, 4, DTuckerConfig())
        assert plan.device == "cpu"

    def test_execute_plan_on_pseudo_device(self, registered_generic) -> None:
        rng = np.random.default_rng(5)
        stack = rng.standard_normal((3, 20, 16))
        for strategy in ("exact", "gram", "rsvd"):
            cpu_plan = plan_compression(20, 16, 4, strategy=strategy)
            dev_plan = plan_compression(
                20, 16, 4, strategy=strategy, device="generic-test"
            )
            assert dev_plan.device == "generic-test"
            with SerialBackend() as eng:
                u0, s0, v0, n0 = execute_plan(eng, stack, 4, cpu_plan, rng=11)
                stats = KernelStats()
                u1, s1, v1, n1 = execute_plan(
                    eng, stack, 4, dev_plan, rng=11, stats=stats
                )
            np.testing.assert_array_equal(n1, n0)  # norms accumulate on host
            np.testing.assert_allclose(s1, s0, rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(
                np.einsum("lik,lk,lkj->lij", u1, s1, v1),
                np.einsum("lik,lk,lkj->lij", u0, s0, v0),
                rtol=1e-7,
                atol=1e-9,
            )
            assert stats.bytes_h2d >= stack.nbytes
            assert stats.bytes_d2h > 0
            assert all(type(arr) is np.ndarray for arr in (u1, s1, v1))


# ---------------------------------------------------------------------------
# device-resident sweeps
# ---------------------------------------------------------------------------


def _problem(shape=(12, 11, 8), ranks=(3, 3, 2)):
    x = random_tensor(shape, ranks, rng=1, noise=0.02)
    ssvd = compress(x, max(ranks[:2]) + 2, rng=0)
    _, factors = initialize(ssvd, ranks)
    return ssvd, ranks, factors


class TestDeviceSweeps:
    def test_workspace_uploads_are_tallied(self, generic) -> None:
        ssvd, ranks, factors = _problem()
        ws = SweepWorkspace(ssvd, module=generic)
        assert ws.engine is None  # device slabs run inline
        expected = ssvd.u.nbytes + ssvd.s.nbytes + ssvd.vt.nbytes
        assert ws.stats.bytes_h2d == expected
        ws.bind_factors(factors)
        assert ws.stats.bytes_h2d == expected + sum(f.nbytes for f in factors)

    def test_device_sweeps_match_numpy(self, registered_generic) -> None:
        ssvd, ranks, factors = _problem()
        cpu = als_sweeps(ssvd, ranks, factors, config=DTuckerConfig(max_iters=4))
        ws = SweepWorkspace(ssvd, module=registered_generic)
        dev = als_sweeps(
            ssvd, ranks, factors, config=DTuckerConfig(max_iters=4), workspace=ws
        )
        # Same math through the generic branches: equal to round-off.
        np.testing.assert_allclose(dev.core, cpu.core, rtol=1e-9, atol=1e-11)
        for a, b in zip(dev.factors, cpu.factors):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dev.errors, cpu.errors, rtol=1e-9)
        # Results land on the host, with the downloads tallied.
        assert type(dev.core) is np.ndarray
        assert all(type(f) is np.ndarray for f in dev.factors)
        assert dev.kernel_stats.bytes_d2h > 0

    def test_env_device_reaches_als_sweeps(self, registered_generic, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_DEVICE", "generic-test")
        ssvd, ranks, factors = _problem()
        res = als_sweeps(ssvd, ranks, factors, config=DTuckerConfig(max_iters=2))
        assert res.kernel_stats.bytes_h2d > 0
        assert res.kernel_stats.bytes_d2h > 0
        assert type(res.core) is np.ndarray


# ---------------------------------------------------------------------------
# float32 compute-dtype discipline (regression: silent float64 upcasts)
# ---------------------------------------------------------------------------


class TestComputeDtype:
    def test_float64_default_is_identity(self) -> None:
        ssvd, ranks, factors = _problem()
        ws = SweepWorkspace(ssvd)
        # No cast, no copy: the views alias the stored representation.
        assert ws._u is ssvd.u or ws._u.base is ssvd.u
        assert ws.compute_dtype == np.float64

    def test_every_cached_projection_is_float32(self) -> None:
        ssvd, ranks, factors = _problem()
        ws = SweepWorkspace(ssvd, compute_dtype=np.float32)
        ws.bind_factors(factors)
        assert ws.factor(0).dtype == np.float32
        assert ws.factor(1).dtype == np.float32
        assert ws.au().dtype == np.float32
        assert ws.av().dtype == np.float32
        assert ws.w().dtype == np.float32
        assert ws.mode1_partial().dtype == np.float32
        assert ws.mode2_partial().dtype == np.float32
        assert ws.project_w_trailing(skip=None).dtype == np.float32
        assert ws.project_w_trailing(skip=2).dtype == np.float32
        z1 = ws.project_trailing(ws.mode1_partial(), skip=None, tag="z1")
        assert z1.dtype == np.float32

    def test_float32_factor_updates_stay_float32(self) -> None:
        ssvd, ranks, factors = _problem()
        ws = SweepWorkspace(ssvd, compute_dtype=np.float32)
        ws.bind_factors(factors)
        # A float64 factor update (e.g. from an SVD on a float64 unfolding)
        # must not leak float64 into the cached projections.
        ws.update_factor(0, np.asarray(factors[0], dtype=np.float64))
        assert ws.factor(0).dtype == np.float32
        assert ws.au().dtype == np.float32
        assert ws.w().dtype == np.float32

    def test_pool_allocates_compute_dtype(self) -> None:
        pool = BufferPool()
        buf64 = pool.take("t", (4, 5), np.float64)
        buf32 = pool.take("t", (4, 5), np.float32)
        assert buf64.dtype == np.float64
        assert buf32.dtype == np.float32
