"""Tests for the dyadic range index, the serving cache, and batched queries."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.dtucker import DTucker
from repro.exceptions import StoreError, StoreFormatError
from repro.store import (
    ModelStore,
    RangeIndex,
    auto_min_span,
    dyadic_cover,
    merge_scaled_bases,
    read_range_index_dir,
    slice_content_fingerprint,
    write_range_index_dir,
)
from repro.store.range_index import slices_per_step
from repro.tensor.random import random_tensor

RANKS = (4, 4, 4)


@pytest.fixture
def temporal(rng: np.random.Generator) -> np.ndarray:
    """Low-rank + noise tensor whose last mode plays the temporal role."""
    return random_tensor((12, 10, 32), (3, 3, 3), rng=rng, noise=0.05)


def fitted_store(x: np.ndarray, path: Path, **kwargs: object) -> ModelStore:
    ranks = tuple(min(r, d) for r, d in zip(RANKS, x.shape))
    model = DTucker(ranks=ranks, seed=0, **kwargs).fit(x)
    return model.save(path)


# -- dyadic cover and merge arithmetic ---------------------------------------

class TestDyadicCover:
    @pytest.mark.parametrize(
        "t0,t1", [(0, 1), (0, 32), (3, 29), (5, 6), (16, 32), (1, 31), (7, 25)]
    )
    def test_exact_disjoint_ordered_aligned(self, t0: int, t1: int) -> None:
        segments = dyadic_cover(t0, t1)
        covered = []
        for start, span in segments:
            assert span >= 1 and span & (span - 1) == 0  # power of two
            assert start % span == 0  # segment-tree aligned
            covered.extend(range(start, start + span))
        assert covered == list(range(t0, t1))  # exact, disjoint, in order

    def test_segment_count_logarithmic(self) -> None:
        for t0, t1 in [(0, 1024), (1, 1023), (511, 513), (37, 997)]:
            n = len(dyadic_cover(t0, t1))
            assert n <= 2 * int(np.log2(t1 - t0)) + 2

    def test_aligned_range_is_one_segment(self) -> None:
        assert dyadic_cover(0, 32) == [(0, 32)]
        assert dyadic_cover(16, 24) == [(16, 8)]

    @pytest.mark.parametrize("t0,t1", [(-1, 4), (4, 4), (5, 3)])
    def test_rejects_bad_ranges(self, t0: int, t1: int) -> None:
        with pytest.raises(ValueError):
            dyadic_cover(t0, t1)


class TestMergeAndMinSpan:
    def test_merge_preserves_gram_matrix(self, rng: np.random.Generator) -> None:
        blocks = [rng.standard_normal((9, w)) for w in (4, 7, 3)]
        merged = merge_scaled_bases(blocks)
        stacked = np.concatenate(blocks, axis=1)
        assert merged.shape[1] <= min(stacked.shape)
        np.testing.assert_allclose(
            merged @ merged.T, stacked @ stacked.T, atol=1e-10
        )

    def test_merge_is_deterministic(self, rng: np.random.Generator) -> None:
        blocks = [rng.standard_normal((6, 5)), rng.standard_normal((6, 4))]
        np.testing.assert_array_equal(
            merge_scaled_bases(blocks), merge_scaled_bases(list(blocks))
        )

    def test_auto_min_span_reaches_target_width(self) -> None:
        # Width rank*per_step*span must reach max(i1, i2); floor is 2.
        assert auto_min_span(12, 10, 4, 1) == 4
        assert auto_min_span(90, 70, 8, 1) == 16
        assert auto_min_span(4, 4, 8, 1) == 2
        assert auto_min_span(64, 8, 4, 4) == 4

    def test_slices_per_step(self) -> None:
        assert slices_per_step((12, 10, 32)) == 1
        assert slices_per_step((5, 4, 3, 6)) == 3


class TestRangeIndex:
    def test_node_bases_exact_vs_raw_blocks(self, temporal, tmp_path) -> None:
        """A merged node's Gram matrix equals the raw stacked blocks'."""
        store = fitted_store(temporal, tmp_path / "m")
        ssvd = store.load_slice_svd()
        index = RangeIndex(ssvd, 1, min_span=4)
        raw1, raw2 = index._leaf(0, 8)
        p1, p2 = index.node(0, 8)
        np.testing.assert_allclose(p1 @ p1.T, raw1 @ raw1.T, atol=1e-8)
        np.testing.assert_allclose(p2 @ p2.T, raw2 @ raw2.T, atol=1e-8)

    def test_memoization_and_counter(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        ssvd = store.load_slice_svd()
        events: list[bool] = []
        index = RangeIndex(ssvd, 1, min_span=4, counter=events.append)
        index.node(0, 8)
        assert events[0] is False  # computed
        n = index.n_nodes
        index.node(0, 8)
        assert events[-1] is True  # served from the table
        assert index.n_nodes == n

    def test_build_materializes_all_keys(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        ssvd = store.load_slice_svd()
        index = RangeIndex.build(ssvd, 1, min_span=8)
        assert index.n_nodes == len(index.node_keys())
        assert index.nbytes > 0

    def test_cover_bounds_checked(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        index = RangeIndex(store.load_slice_svd(), 1)
        with pytest.raises(ValueError, match="outside"):
            index.cover(0, 33)

    def test_concurrent_node_computation_single_value(
        self, temporal, tmp_path
    ) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        index = RangeIndex(store.load_slice_svd(), 1, min_span=4)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(lambda _: index.node(0, 16), range(8)))
        first = results[0]
        for p1, p2 in results[1:]:
            assert p1 is first[0] or np.array_equal(p1, first[0])
            assert p2 is first[1] or np.array_equal(p2, first[1])


# -- persisted payload format ------------------------------------------------

class TestIndexPayload:
    def test_write_read_roundtrip(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        index = store.build_index(min_span=8)
        payload = read_range_index_dir(store.path / "index")
        assert payload["extent"] == 32
        assert payload["min_span"] == 8
        assert payload["fingerprint"] == store.content_fingerprint
        snapshot = index.nodes_snapshot()
        assert set(payload["nodes"]) == set(snapshot)
        for key, (p1, p2) in snapshot.items():
            np.testing.assert_array_equal(payload["nodes"][key][0], p1)
            np.testing.assert_array_equal(payload["nodes"][key][1], p2)

    def test_open_uses_persisted_nodes(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index(min_span=8)
        with store.open() as served:
            served.query_time_range(0, 32)
            # The aligned [0, 32) cover is one persisted node: a pure hit.
            counters = served.stats.counters
            assert counters.hits_for("node") >= 1
            assert counters.misses_for("node") == 0

    def test_corrupt_meta_is_typed_error(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        (store.path / "index" / "meta.json").write_text("{not json")
        with pytest.raises(StoreFormatError):
            read_range_index_dir(store.path / "index")

    def test_foreign_format_rejected(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        meta_path = store.path / "index" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = "something.else"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreFormatError, match="range index"):
            read_range_index_dir(store.path / "index")

    def test_misaligned_node_rejected(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index(min_span=8)
        meta_path = store.path / "index" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["nodes"][0][0] = 3  # start no longer aligned to its span
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreFormatError):
            read_range_index_dir(store.path / "index")

    def test_stale_fingerprint_rejected_at_open(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        meta_path = store.path / "index" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["fingerprint"] = "0" * len(meta["fingerprint"])
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreFormatError, match="stale"):
            ModelStore(store.path).open()

    def test_describe_flags_stale_index(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        meta_path = store.path / "index" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["fingerprint"] = "0" * len(meta["fingerprint"])
        meta_path.write_text(json.dumps(meta))
        assert "STALE" in ModelStore(store.path).describe()

    def test_drop_index(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        assert store.has_index
        store.drop_index()
        assert not store.has_index
        with store.open() as served:  # serving falls back to lazy nodes
            served.query_time_range(0, 8)

    def test_save_without_index_drops_stale_payload(
        self, temporal, tmp_path
    ) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        ranks = tuple(min(r, d) for r, d in zip(RANKS, temporal.shape))
        DTucker(ranks=ranks, seed=1).fit(temporal).save(
            store.path, overwrite=True
        )
        assert not ModelStore(store.path).has_index


# -- bit-identity of the serving paths ---------------------------------------

class TestBitIdentity:
    QUERIES = [(0, 8), (8, 24), (3, 29), (30, 32)]

    def _answers(self, store: ModelStore, **open_kwargs: object):
        with store.open(warm_start=False, **open_kwargs) as served:
            return [served.query_time_range(a, b) for a, b in self.QUERIES]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_indexed_vs_unindexed(self, temporal, tmp_path, backend) -> None:
        """Persisted index, lazy index, and no index: identical bits."""
        store = fitted_store(
            temporal, tmp_path / backend, backend=backend, n_workers=2
        )
        plain = self._answers(store, use_index=False, cache_size=0)
        lazy = self._answers(store)
        store.build_index()
        persisted = self._answers(store)
        for a, b, c in zip(plain, lazy, persisted):
            np.testing.assert_array_equal(a.core, b.core)
            np.testing.assert_array_equal(a.core, c.core)
            for fa, fb in zip(a.factors, b.factors):
                np.testing.assert_array_equal(fa, fb)
            for fa, fc in zip(a.factors, c.factors):
                np.testing.assert_array_equal(fa, fc)

    def test_exact_cache_hit_returns_same_object(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            first = served.query_time_range(2, 14)
            again = served.query_time_range(2, 14)
            assert again is first
            assert served.stats.cache_hits == 1

    def test_warm_start_close_but_flagged(self, temporal, tmp_path) -> None:
        """Warm-started answers converge to tolerance and are recorded.

        A warm start seeds ALS from an overlapping range's factors, so it
        reaches the same objective but not necessarily the same bits —
        which is exactly why it is telemetry-flagged and separately
        switchable (``warm_start=False`` restores determinism).
        """
        store = fitted_store(temporal, tmp_path / "m")
        sub = temporal[..., 4:28]
        with store.open(use_index=False, cache_size=0, warm_start=False) as served:
            cold = served.query_time_range(4, 28)
        with store.open() as served:
            served.query_time_range(0, 24)  # overlapping seed entry
            warm = served.query_time_range(4, 28)
            assert served.stats.warm_starts == 1
            assert served.stats.by_cache()["warm"] == 1
        assert warm.error(sub) == pytest.approx(cold.error(sub), rel=0.05)


# -- LRU cache behaviour -----------------------------------------------------

class TestQueryCache:
    def test_eviction_bounds(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open(cache_size=3) as served:
            assert served.cache_size == 3
            for t0 in range(5):
                served.query_time_range(t0, t0 + 4)
            assert served.cached_queries == 3
            # Oldest entries were evicted: re-asking recomputes, not hits.
            hits_before = served.stats.cache_hits
            served.query_time_range(0, 4)
            assert served.stats.cache_hits == hits_before

    def test_cache_disabled(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open(cache_size=0, warm_start=False) as served:
            a = served.query_time_range(0, 8)
            b = served.query_time_range(0, 8)
            assert a is not b
            assert served.cached_queries == 0
            np.testing.assert_array_equal(a.core, b.core)

    def test_rank_override_distinct_keys(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open(warm_start=False) as served:
            a = served.query_time_range(0, 16)
            b = served.query_time_range(0, 16, ranks=(2, 2, 2))
            assert a.ranks != b.ranks
            assert served.cached_queries == 2
            assert served.stats.cache_hits == 0

    def test_clear_cache(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            served.query_time_range(0, 8)
            assert served.cached_queries == 1
            served.clear_cache()
            assert served.cached_queries == 0


# -- batched queries ---------------------------------------------------------

class TestQueryMany:
    def test_order_and_dedup(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        ranges = [(0, 8), (8, 16), (0, 8), (16, 32)]
        with store.open() as served:
            answers = served.query_many(ranges)
            assert len(answers) == len(ranges)
            assert answers[0] is answers[2]  # duplicates share one answer
            for (t0, t1), local in zip(ranges, answers):
                assert local.shape[-1] == t1 - t0

    def test_matches_individual_queries(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        ranges = [(0, 8), (4, 20), (20, 32)]
        with store.open(warm_start=False) as served:
            individual = [served.query_time_range(a, b) for a, b in ranges]
        with store.open(warm_start=False) as served:
            batched = served.query_many(ranges, max_workers=3)
        for a, b in zip(individual, batched):
            np.testing.assert_array_equal(a.core, b.core)
            for fa, fb in zip(a.factors, b.factors):
                np.testing.assert_array_equal(fa, fb)

    def test_concurrent_mixed_workload(self, temporal, tmp_path) -> None:
        """query_many, query_time_range and reconstruct racing on one model."""
        store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            expected = served.reconstruct()
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(served.query_many, [(0, 8), (8, 24)]),
                    pool.submit(served.query_time_range, 3, 29),
                    pool.submit(served.reconstruct),
                    pool.submit(served.query_many, [(0, 8), (3, 29)]),
                ]
                results = [f.result() for f in futures]
            np.testing.assert_array_equal(results[2], expected)
            assert served.stats.n_queries >= 4

    def test_rejects_bad_ranges_before_work(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            with pytest.raises(StoreError):
                served.query_many([(0, 8), (30, 99)])
            assert served.stats.n_queries == 0

    def test_closed_model_raises(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        served = store.open()
        served.query_many([(0, 8)])
        served.close()
        with pytest.raises(StoreError, match="closed"):
            served.query_many([(0, 8)])


# -- append integration ------------------------------------------------------

class TestAppendIndex:
    def test_append_extends_index(self, temporal, rng, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index(min_span=8)
        block = random_tensor((12, 10, 16), (3, 3, 3), rng=rng, noise=0.05)
        store.append(block)
        assert store.has_index
        payload = read_range_index_dir(store.path / "index")
        assert payload["extent"] == 48
        assert payload["fingerprint"] == store.content_fingerprint
        # Answers through the refreshed index match a from-scratch open.
        with store.open(warm_start=False) as served:
            indexed = served.query_time_range(24, 44)
        with store.open(use_index=False, cache_size=0, warm_start=False) as served:
            plain = served.query_time_range(24, 44)
        np.testing.assert_array_equal(indexed.core, plain.core)

    def test_append_without_index_stays_absent(
        self, temporal, rng, tmp_path
    ) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        block = random_tensor((12, 10, 16), (3, 3, 3), rng=rng, noise=0.05)
        store.append(block)
        assert not store.has_index

    def test_append_with_corrupt_index_raises(
        self, temporal, rng, tmp_path
    ) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        store.build_index()
        (store.path / "index" / "meta.json").write_text("{not json")
        block = random_tensor((12, 10, 16), (3, 3, 3), rng=rng, noise=0.05)
        with pytest.raises(StoreFormatError):
            store.append(block)


# -- serving stats -----------------------------------------------------------

class TestServingStats:
    def test_summary_includes_cache_breakdown(self, temporal, tmp_path) -> None:
        store = fitted_store(temporal, tmp_path / "m")
        with store.open() as served:
            served.query_time_range(0, 8)
            served.query_time_range(0, 8)
            summary = served.stats.summary()
        assert "cache=1h/1m" in summary
        assert "nodes=" in summary

    def test_record_is_thread_safe(self) -> None:
        from repro.store import ServingStats

        stats = ServingStats()

        def spam(i: int) -> None:
            for _ in range(200):
                stats.record("time_range", 0.0, 1, cache="hit")

        threads = [threading.Thread(target=spam, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.n_queries == 1600
        assert stats.cache_hits == 1600


# -- CLI ---------------------------------------------------------------------

class TestCli:
    @pytest.fixture
    def store_dir(self, temporal, tmp_path) -> Path:
        path = tmp_path / "store"
        np.save(tmp_path / "x.npy", temporal)
        assert (
            main(
                [
                    "fit",
                    str(tmp_path / "x.npy"),
                    "--ranks",
                    "3,3,3",
                    "--save",
                    str(path),
                    "--index",
                ]
            )
            == 0
        )
        return path

    def test_fit_index_persists(self, store_dir, capsys) -> None:
        assert ModelStore(store_dir).has_index
        assert main(["inspect", str(store_dir)]) == 0
        assert "range index" in capsys.readouterr().out

    def test_query_ranges_batch(self, store_dir, capsys) -> None:
        assert (
            main(["query", str(store_dir), "--ranges", "0:8,8:16,0:8"]) == 0
        )
        out = capsys.readouterr().out
        assert out.count("time range [") == 3
        assert "cache" in out

    def test_query_block_reconstructs(self, store_dir, capsys) -> None:
        assert main(["query", str(store_dir), "--block", "0:5,:,2:4"]) == 0
        assert "shape=(5, 10, 2)" in capsys.readouterr().out

    def test_query_requires_one_mode(self, store_dir, capsys) -> None:
        assert main(["query", str(store_dir)]) == 2
        assert (
            main(
                [
                    "query",
                    str(store_dir),
                    "--time-range",
                    "0:8",
                    "--ranges",
                    "0:8",
                ]
            )
            == 2
        )

    def test_index_build_and_drop(self, store_dir, capsys) -> None:
        assert main(["index", str(store_dir), "--drop"]) == 0
        assert not ModelStore(store_dir).has_index
        assert main(["index", str(store_dir), "--min-span", "8"]) == 0
        assert ModelStore(store_dir).has_index
        out = capsys.readouterr().out
        assert "min_span 8" in out
