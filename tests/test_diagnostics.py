"""Tests for the Tucker diagnostics module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtucker import DTucker
from repro.core.result import TuckerResult
from repro.diagnostics import check_tucker
from repro.exceptions import ShapeError
from repro.tensor.random import random_tensor, random_tucker


class TestHealthyResult:
    def test_no_issues_for_fit(self, rng) -> None:
        x = random_tensor((12, 10, 8), (3, 2, 2), rng=rng, noise=0.05)
        result = DTucker(ranks=(3, 2, 2), seed=0).fit(x).result_
        diag = check_tucker(result, x)
        assert diag.healthy, diag.issues
        assert diag.error is not None and diag.error < 0.01

    def test_residuals_near_zero(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        diag = check_tucker(TuckerResult(core=core, factors=factors))
        assert all(r < 1e-10 for r in diag.orthonormality_residuals)

    def test_core_energy(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        diag = check_tucker(TuckerResult(core=core, factors=factors))
        assert diag.core_energy == pytest.approx(float(np.sum(core**2)))

    def test_energy_fractions_sum_to_one(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (3, 2, 2), rng)
        diag = check_tucker(TuckerResult(core=core, factors=factors))
        for frac in diag.core_energy_by_mode:
            assert float(frac.sum()) == pytest.approx(1.0)

    def test_summary_readable(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        text = check_tucker(TuckerResult(core=core, factors=factors)).summary()
        assert "healthy: yes" in text


class TestUnhealthyResults:
    def test_non_orthonormal_factor_flagged(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        factors[1] = factors[1] * 2.0  # break orthonormality
        diag = check_tucker(TuckerResult(core=core, factors=factors))
        assert not diag.healthy
        assert any("factor 1" in msg for msg in diag.issues)

    def test_dead_component_flagged(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (3, 2, 2), rng)
        core[2, :, :] = 0.0  # third mode-0 component unused
        diag = check_tucker(TuckerResult(core=core, factors=factors))
        assert any("dead component" in msg for msg in diag.issues)
        assert any("mode 0" in msg for msg in diag.issues)

    def test_summary_lists_issues(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        factors[0] *= 3.0
        text = check_tucker(TuckerResult(core=core, factors=factors)).summary()
        assert "ISSUES" in text

    def test_reference_shape_mismatch_raises(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        with pytest.raises(ShapeError):
            check_tucker(result, rng.standard_normal((4, 4, 4)))

    def test_error_reported_against_reference(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (2, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        x = rng.standard_normal((8, 7, 6))
        diag = check_tucker(result, x)
        assert diag.error is not None and diag.error > 0.1
