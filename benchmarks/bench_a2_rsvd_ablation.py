"""A2 — ablation: randomized-SVD parameters of the approximation phase.

Sweeps oversampling ``p`` and power iterations ``q`` (DESIGN.md §5.2) and
records approximation-phase time, compression error, and end-to-end
decomposition error, including the exact-SVD reference.  Expected shape:
``q`` buys most of the accuracy, extra oversampling has diminishing
returns, and the end-to-end error is insensitive once the compression error
sits below the target rank's noise floor — justifying the paper's cheap
randomized compression.
"""

from __future__ import annotations

import pytest
from _util import bench_scale, cached_dataset, write_result

from repro.core.dtucker import DTucker
from repro.experiments.report import format_table

DATASET = "boats"
SETTINGS: tuple[tuple[str, dict], ...] = (
    ("p=5,q=0", {"oversampling": 5, "power_iterations": 0}),
    ("p=10,q=0", {"oversampling": 10, "power_iterations": 0}),
    ("p=5,q=1", {"oversampling": 5, "power_iterations": 1}),
    ("p=10,q=1", {"oversampling": 10, "power_iterations": 1}),
    ("p=10,q=2", {"oversampling": 10, "power_iterations": 2}),
    ("exact", {"exact_slice_svd": True}),
)

ROWS: list[list[object]] = []


@pytest.mark.parametrize("setting", SETTINGS, ids=lambda s: s[0])
def test_a2_rsvd(benchmark, setting: tuple[str, dict]) -> None:
    label, kwargs = setting
    data = cached_dataset(DATASET)

    def run() -> DTucker:
        return DTucker(data.ranks, seed=0, **kwargs).fit(data.tensor)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    compression_err = model.slice_svd_.compression_error(data.tensor)
    end_to_end = model.result_.error(data.tensor)
    ROWS.append(
        [
            label,
            f"{model.timings_['approximation']:.4f}",
            f"{compression_err:.6f}",
            f"{end_to_end:.6f}",
        ]
    )


def test_a2_report(benchmark) -> None:
    def build() -> str:
        table = format_table(
            ["setting", "approx_time_s", "compression_err", "tucker_err"], ROWS
        )
        return f"scale={bench_scale()}, dataset={DATASET}\n{table}"

    text = benchmark(build)
    by_label = {r[0]: r for r in ROWS}
    # Shape checks: power iteration tightens compression; the exact SVD is
    # the accuracy floor; end-to-end error is insensitive across settings.
    assert float(by_label["p=10,q=1"][2]) <= float(by_label["p=10,q=0"][2]) + 1e-9
    comp_errs = [float(r[2]) for r in ROWS]
    assert min(comp_errs) == pytest.approx(float(by_label["exact"][2]), rel=0.3)
    tucker_errs = [float(r[3]) for r in ROWS]
    assert max(tucker_errs) <= min(tucker_errs) * 1.5 + 1e-4
    path = write_result("A2_rsvd_ablation", text)
    print(f"\n[A2] rSVD ablation -> {path}\n{text}")
