"""F1 — running-time comparison across datasets and methods.

Regenerates the paper's headline running-time figure: wall-clock seconds of
every method on every dataset (D-Tucker's time split into its three phases
in the emitted table).  Paper shape to reproduce: D-Tucker is the fastest
or tied-fastest full-accuracy method, with the gap growing with slice count
and slice size.
"""

from __future__ import annotations

import pytest
from _util import (
    ALL_METHODS,
    PAPER_DATASETS,
    bench_scale,
    cached_dataset,
    method_kwargs,
    methods_for,
    write_result,
)

from repro.experiments.harness import ExperimentRecord, run_method
from repro.experiments.report import format_records, speedup_over

RECORDS: list[ExperimentRecord] = []


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_f1_runtime(benchmark, dataset: str, method: str) -> None:
    data = cached_dataset(dataset)
    if method not in methods_for(data.ranks):
        pytest.skip(f"o.o.t.: {method} core solve too large at ranks {data.ranks}")

    def run() -> ExperimentRecord:
        return run_method(
            method, data.tensor, data.ranks, dataset=dataset, seed=0,
            **method_kwargs(method),
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["error"] = record.error
    benchmark.extra_info["stored_nbytes"] = record.stored_nbytes
    RECORDS.append(record)


def test_f1_report(benchmark) -> None:
    def build() -> str:
        table = format_records(RECORDS)
        lines = [f"scale={bench_scale()}", table, "", "speedup of dtucker over:"]
        for dataset, ratios in speedup_over(RECORDS).items():
            pretty = ", ".join(f"{m}={v:.2f}x" for m, v in sorted(ratios.items()))
            lines.append(f"  {dataset}: {pretty}")
        return "\n".join(lines)

    text = benchmark(build)
    path = write_result("F1_runtime", text)
    print(f"\n[F1] runtime comparison -> {path}\n{text}")
