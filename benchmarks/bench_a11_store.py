"""A11 — the model store: round-trip fidelity and serving speedups.

Three sections:

* **roundtrip** (acceptance gate): fit → ``save`` → ``open`` in-process
  must reproduce the in-memory model bit for bit (result payloads and full
  reconstruction), and manifest metadata (shape/ranks/bytes) must agree
  with the live objects without loading payloads.

* **query** (acceptance gate): a served ``query_time_range`` answers a
  local Tucker decomposition from the stored per-slice SVDs —
  initialization + ALS sweeps only.  The gate compares against the honest
  alternative, a fresh ``DTucker.fit`` on the raw sub-tensor (which must
  re-run compression), requiring the served path to be at least as fast
  while landing within 1.5x of the direct fit's reconstruction error.

* **serving** (informative): N reader threads against one mapped
  ``ServedModel`` — total wall clock vs the same queries served serially,
  with the bit-identity contract checked on every answer.

The machine-readable report lands at ``BENCH_store.json`` in the repo
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_a11_store.py           # full
    PYTHONPATH=src python benchmarks/bench_a11_store.py --smoke   # CI

``--smoke`` runs a small tensor with the same gates and exits non-zero on
any fidelity or accuracy regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_store.json"

SEED = 0

#: Full-scale workload (smoke shrinks everything).
SHAPE = (90, 70, 240)
RANKS = (8, 8, 8)
NOISE = 0.05
QUERY_SPAN = 48
N_READERS = 4
QUERIES_PER_READER = 6


def _data(shape: tuple[int, ...]) -> np.ndarray:
    from repro.tensor.random import random_tensor

    ranks = tuple(min(r, d) for r, d in zip(RANKS, shape))
    return random_tensor(shape, ranks, rng=np.random.default_rng(SEED), noise=NOISE)


def run_roundtrip_section(x: np.ndarray, store_dir: Path) -> dict:
    """fit → save → open: fidelity and metadata consistency."""
    from repro.core.dtucker import DTucker
    from repro.store import ModelStore

    ranks = tuple(min(r, d) for r, d in zip(RANKS, x.shape))
    t0 = time.perf_counter()
    model = DTucker(ranks=ranks, seed=SEED).fit(x)
    fit_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    store = model.save(store_dir, overwrite=True)
    save_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    served = ModelStore(store_dir).open()
    open_seconds = time.perf_counter() - t0

    bit_identical = bool(
        np.array_equal(served.result.core, model.result_.core)
        and all(
            np.array_equal(a, b)
            for a, b in zip(served.result.factors, model.result_.factors)
        )
        and np.array_equal(
            served.reconstruct(), model.result_.reconstruct()
        )
    )
    metadata_consistent = bool(
        store.shape == x.shape
        and store.ranks == ranks
        and store.nbytes > 0
        and abs(store.compression_ratio - model.compression_ratio_) < 1e-9
    )
    served.close()
    return {
        "shape": list(x.shape),
        "ranks": list(ranks),
        "fit_seconds": fit_seconds,
        "save_seconds": save_seconds,
        "open_seconds": open_seconds,
        "store_nbytes": store.nbytes,
        "compression_ratio": store.compression_ratio,
        "bit_identical": bit_identical,
        "metadata_consistent": metadata_consistent,
        "_model": model,  # stripped before serialisation
    }


def run_query_section(x: np.ndarray, store_dir: Path, model) -> dict:
    """Served time-range query vs refitting the raw sub-tensor from scratch."""
    from repro.core.dtucker import DTucker
    from repro.store import ModelStore

    steps = x.shape[-1]
    span = min(QUERY_SPAN, steps)
    t0, t1 = (steps - span) // 2, (steps - span) // 2 + span
    sub = x[..., t0:t1]
    ranks = tuple(min(r, d) for r, d in zip(RANKS, sub.shape))

    with ModelStore(store_dir).open() as served:
        served.query_time_range(t0, t1)  # warm the reader engine
        t_start = time.perf_counter()
        local = served.query_time_range(t0, t1)
        served_seconds = time.perf_counter() - t_start

    t_start = time.perf_counter()
    direct = DTucker(ranks=ranks, seed=SEED).fit(sub)
    direct_seconds = time.perf_counter() - t_start

    served_error = float(local.error(sub))
    direct_error = float(direct.result_.error(sub))
    return {
        "time_range": [t0, t1],
        "sub_shape": list(sub.shape),
        "served_seconds": served_seconds,
        "direct_fit_seconds": direct_seconds,
        "speedup_vs_direct_fit": direct_seconds / served_seconds,
        "served_error": served_error,
        "direct_error": direct_error,
        "error_ratio": served_error / max(direct_error, 1e-30),
    }


def run_serving_section(store_dir: Path, steps: int) -> dict:
    """Concurrent readers vs serial on one mapped model (bit-identity checked)."""
    from repro.store import ModelStore

    span = max(2, min(QUERY_SPAN, steps) // 2)
    jobs = [
        ((i * 3) % (steps - span), (i * 3) % (steps - span) + span)
        for i in range(N_READERS * QUERIES_PER_READER)
    ]
    with ModelStore(store_dir).open() as served:
        t0 = time.perf_counter()
        serial = [served.query_time_range(a, b) for a, b in jobs]
        serial_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_READERS) as pool:
            concurrent = list(
                pool.map(lambda j: served.query_time_range(*j), jobs)
            )
        concurrent_seconds = time.perf_counter() - t0
        threads = {r.thread for r in served.stats.records}
        summary = served.stats.summary()

    # Materialise outside the timed region: reconstruction is client-side
    # work, not the serving layer under measurement.
    bit_identical = all(
        np.array_equal(a.reconstruct(), b.reconstruct())
        for a, b in zip(serial, concurrent)
    )
    return {
        "n_queries": len(jobs),
        "n_readers": N_READERS,
        "serial_seconds": serial_seconds,
        "concurrent_seconds": concurrent_seconds,
        "speedup": serial_seconds / concurrent_seconds,
        "threads_used": len(threads),
        "bit_identical": bool(bit_identical),
        "stats": summary,
    }


def run_all(shape: tuple[int, ...] = SHAPE) -> dict:
    x = _data(shape)
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        roundtrip = run_roundtrip_section(x, store_dir)
        model = roundtrip.pop("_model")
        query = run_query_section(x, store_dir, model)
        serving = run_serving_section(store_dir, x.shape[-1])
    return {
        "benchmark": "A11_store",
        "seed": SEED,
        "roundtrip": roundtrip,
        "query": query,
        "serving": serving,
    }


def _check(report: dict) -> int:
    rt, q = report["roundtrip"], report["query"]
    if not rt["bit_identical"]:
        print("[A11] FAIL: save/open round trip is not bit-identical", file=sys.stderr)
        return 1
    if not rt["metadata_consistent"]:
        print("[A11] FAIL: manifest metadata disagrees with payloads", file=sys.stderr)
        return 1
    if q["error_ratio"] > 1.5:
        print(
            f"[A11] FAIL: served query error {q['served_error']:.3e} is "
            f"{q['error_ratio']:.2f}x the direct fit's {q['direct_error']:.3e} "
            "(budget 1.5x)",
            file=sys.stderr,
        )
        return 1
    if q["speedup_vs_direct_fit"] < 1.0:
        print(
            f"[A11] FAIL: served query ({q['served_seconds'] * 1e3:.1f} ms) "
            f"slower than refitting the raw sub-tensor "
            f"({q['direct_fit_seconds'] * 1e3:.1f} ms)",
            file=sys.stderr,
        )
        return 1
    if not report["serving"]["bit_identical"]:
        print("[A11] FAIL: concurrent answers differ from serial", file=sys.stderr)
        return 1
    return 0


def _format(report: dict) -> str:
    rt, q, sv = report["roundtrip"], report["query"], report["serving"]
    return "\n".join(
        [
            f"roundtrip: shape {tuple(rt['shape'])} ranks {tuple(rt['ranks'])}",
            f"  fit={rt['fit_seconds'] * 1e3:8.1f} ms  save={rt['save_seconds'] * 1e3:6.1f} ms  "
            f"open={rt['open_seconds'] * 1e3:6.1f} ms",
            f"  store={rt['store_nbytes']} bytes ({rt['compression_ratio']:.2f}x vs dense)  "
            f"bit_identical={rt['bit_identical']}",
            f"query: timesteps {tuple(q['time_range'])} -> {tuple(q['sub_shape'])}",
            f"  served={q['served_seconds'] * 1e3:8.1f} ms  "
            f"direct_fit={q['direct_fit_seconds'] * 1e3:8.1f} ms  "
            f"speedup={q['speedup_vs_direct_fit']:.2f}x",
            f"  error: served={q['served_error']:.4e}  direct={q['direct_error']:.4e}  "
            f"ratio={q['error_ratio']:.3f}",
            f"serving: {sv['n_queries']} queries, {sv['n_readers']} readers "
            f"({sv['threads_used']} threads used)",
            f"  serial={sv['serial_seconds'] * 1e3:8.1f} ms  "
            f"concurrent={sv['concurrent_seconds'] * 1e3:8.1f} ms  "
            f"speedup={sv['speedup']:.2f}x  bit_identical={sv['bit_identical']}",
        ]
    )


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a11_roundtrip_small(benchmark) -> None:
    """Quick-scale gates: round-trip fidelity + query accuracy/speed."""

    def run() -> dict:
        return run_all(shape=(40, 30, 80))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _check(report) == 0, report


def test_a11_report(benchmark) -> None:
    """Full comparison; writes BENCH_store.json at the repo root."""

    def run() -> dict:
        return run_all()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A11_store", text)
    print(f"\n[A11] model store -> {path} and {JSON_PATH}\n{text}")
    assert _check(report) == 0


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: small tensor, same gates",
    )
    args = parser.parse_args(argv)
    shape = (40, 30, 80) if args.smoke else SHAPE
    report = run_all(shape=shape)
    text = _format(report)
    if args.smoke:
        print(f"[A11 smoke]\n{text}")
        rc = _check(report)
        if rc == 0:
            print("[A11 smoke] OK: round trip bit-identical, query within budget")
        return rc
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(text)
    print(f"wrote {JSON_PATH}")
    return _check(report)


if __name__ == "__main__":
    raise SystemExit(main())
