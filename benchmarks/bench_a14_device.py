"""A14 — pluggable array-API layer: dispatch overhead, placement, parity.

Four sections, none of which require an accelerator to be installed:

* **numpy overhead** — the facade-dispatched sweep loop
  (:func:`repro.core.iteration.als_sweeps` through ``SweepWorkspace``)
  against the pre-facade reference loop
  (:func:`repro.kernels.naive.naive_als_sweeps`).  The results must be
  **bit-identical** (the NumPy module is a literal delegation layer) and
  the dispatched loop must not be slower — the facade may only remove
  work, never add a measurable per-call cost.
* **pseudo-device overhead** — the same sweeps with the workspace bound
  to a generic (non-subclassed) :class:`ArrayModule` wrapped around
  NumPy.  That routes the full device plumbing — construction-time
  uploads, inline slab execution (engine bypass), result downloads, and
  the transfer accounting — while the arithmetic stays NumPy, isolating
  the facade's plumbing cost from kernel speed.  Records the
  pseudo-device/native runtime ratio, checks parity, and verifies the
  ``xfer:h2d`` / ``xfer:d2h`` accounting fires.
* **placement ranking** — :func:`repro.kernels.compress_plan.
  estimate_device_costs` across a slab-geometry grid: compute-dominated
  slabs must rank the device first, transfer-dominated slabs the CPU.
* **torch parity** (optional) — when torch is importable, a CPU-torch fit
  must match the NumPy fit within 1e-6 (the host-drawn sketch makes the
  randomness identical); skipped silently otherwise.

The machine-readable report lands at ``BENCH_device.json`` in the repo
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_a14_device.py           # full
    PYTHONPATH=src python benchmarks/bench_a14_device.py --smoke   # CI

``--smoke`` is the fast CI guard: bit-identity of the NumPy path, the
placement ranking on the two extreme geometries, and the transfer
accounting on a pseudo-device sweep — exit non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_device.json"

SEED = 0
SHAPE = (48, 44, 30)
RANKS = (8, 8, 6)
SWEEPS = 6

#: (label, i1, i2, rank, method) — the placement grid.  The first two are
#: transfer-dominated (tiny slab, cheap method), the last two compute-
#: dominated (the exact SVD's m^3 term swamps the slab bytes).
PLACEMENT_GRID = [
    ("tiny-gram", 16, 16, 4, "gram", "cpu"),
    ("skinny-rsvd", 256, 24, 6, "rsvd", "cpu"),
    ("big-exact", 2048, 2048, 32, "exact", "cuda"),
    ("wide-exact", 1024, 4096, 16, "exact", "cuda"),
]


def _problem(shape=SHAPE, ranks=RANKS):
    from repro.core.initialization import initialize
    from repro.core.slice_svd import compress
    from repro.tensor.random import random_tensor

    x = random_tensor(shape, ranks, rng=1, noise=0.02)
    ssvd = compress(x, max(ranks[:2]) + 2, rng=SEED)
    _, factors = initialize(ssvd, ranks)
    return ssvd, factors


def _generic_module():
    from repro.engine.array_api import ArrayModule

    am = ArrayModule("generic-bench", np)
    am.caps["native_einsum"] = False
    am.caps["native_kron"] = False
    return am


def _best_of(fn, repeats: int) -> tuple[object, float]:
    out, best = None, float("inf")
    for _ in range(max(1, int(repeats))):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def run_numpy_overhead(*, repeats: int = 5) -> dict:
    """Facade-dispatched sweeps vs the pre-facade naive loop."""
    from repro.core.config import DTuckerConfig
    from repro.core.iteration import als_sweeps
    from repro.kernels import naive_als_sweeps

    ssvd, factors = _problem()
    cfg = DTuckerConfig(seed=SEED, backend="serial", max_iters=SWEEPS, tol=1e-300)

    def dispatched():
        return als_sweeps(ssvd, RANKS, factors, config=cfg)

    def naive():
        return naive_als_sweeps(ssvd, RANKS, factors, config=cfg)

    dispatched()  # warm-up
    naive()
    res_d, sec_d = _best_of(dispatched, repeats)
    res_n, sec_n = _best_of(naive, repeats)
    identical = bool(
        np.array_equal(res_d.core, res_n.core)
        and all(np.array_equal(a, b) for a, b in zip(res_d.factors, res_n.factors))
    )
    return {
        "dispatched_seconds": sec_d,
        "naive_seconds": sec_n,
        "overhead_ratio": sec_d / sec_n,
        "bit_identical": identical,
    }


def run_generic_overhead(*, repeats: int = 5) -> dict:
    """Native NumPy branches vs the generic emulation branches."""
    from repro.core.config import DTuckerConfig
    from repro.core.iteration import als_sweeps
    from repro.kernels import SweepWorkspace

    ssvd, factors = _problem()
    cfg = DTuckerConfig(seed=SEED, backend="serial", max_iters=SWEEPS, tol=1e-300)

    def native():
        return als_sweeps(ssvd, RANKS, factors, config=cfg)

    def generic():
        ws = SweepWorkspace(ssvd, module=_generic_module())
        return als_sweeps(ssvd, RANKS, factors, config=cfg, workspace=ws)

    native()  # warm-up
    generic()
    res_nat, sec_nat = _best_of(native, repeats)
    res_gen, sec_gen = _best_of(generic, repeats)
    max_dev = max(
        float(np.max(np.abs(res_gen.core - res_nat.core))),
        max(
            float(np.max(np.abs(a - b)))
            for a, b in zip(res_gen.factors, res_nat.factors)
        ),
    )
    stats = res_gen.kernel_stats
    return {
        "native_seconds": sec_nat,
        "generic_seconds": sec_gen,
        "generic_ratio": sec_gen / sec_nat,
        "max_deviation": max_dev,
        "bytes_h2d": stats.bytes_h2d,
        "bytes_d2h": stats.bytes_d2h,
    }


def run_placement() -> dict:
    """Cost-model placement across the slab-geometry grid."""
    from repro.kernels.compress_plan import estimate_costs, estimate_device_costs

    rows = []
    for label, i1, i2, rank, method, expect in PLACEMENT_GRID:
        costs = estimate_device_costs(
            i1, i2, rank, method_cost=estimate_costs(i1, i2, rank)[method]
        )
        placed = min(costs, key=costs.get)
        rows.append(
            {
                "case": label,
                "i1": i1,
                "i2": i2,
                "rank": rank,
                "method": method,
                "cpu_cost": costs["cpu"],
                "cuda_cost": costs["cuda"],
                "placed": placed,
                "expected": expect,
                "ok": placed == expect,
            }
        )
    return {"grid": rows, "all_ok": all(r["ok"] for r in rows)}


def run_torch_parity() -> dict | None:
    """CPU-torch fit vs NumPy fit; ``None`` when torch is absent."""
    from repro.engine.array_api import probe_namespaces

    if not probe_namespaces()["torch"]:
        return None
    from repro.core.config import DTuckerConfig
    from repro.core.dtucker import DTucker
    from repro.tensor.random import random_tensor

    x = random_tensor(SHAPE, RANKS, rng=1, noise=0.02)
    base = DTuckerConfig(seed=SEED, backend="serial", max_iters=SWEEPS)
    cpu = DTucker(RANKS, config=base).fit(x)
    torch_cfg = base.with_overrides(device="torch")
    dev = DTucker(RANKS, config=torch_cfg).fit(x)
    max_dev = max(
        float(np.max(np.abs(dev.result_.core - cpu.result_.core))),
        max(
            float(np.max(np.abs(a - b)))
            for a, b in zip(dev.result_.factors, cpu.result_.factors)
        ),
    )
    return {"max_deviation": max_dev, "within_1e6": max_dev < 1e-6}


def run_all(*, repeats: int = 5) -> dict:
    report = {
        "benchmark": "A14_device_layer",
        "seed": SEED,
        "shape": list(SHAPE),
        "ranks": list(RANKS),
        "numpy_overhead": run_numpy_overhead(repeats=repeats),
        "generic_overhead": run_generic_overhead(repeats=repeats),
        "placement": run_placement(),
    }
    torch_parity = run_torch_parity()
    report["torch_parity"] = torch_parity if torch_parity else "torch not installed"
    return report


def smoke() -> int:
    """Fast CI guard: bit-identity, placement ranking, xfer accounting."""
    from repro.core.config import DTuckerConfig
    from repro.core.iteration import als_sweeps
    from repro.kernels import SweepWorkspace, naive_als_sweeps

    ssvd, factors = _problem((16, 14, 10), (4, 4, 3))
    cfg = DTuckerConfig(seed=SEED, backend="serial", max_iters=3, tol=1e-300)
    res_d = als_sweeps(ssvd, (4, 4, 3), factors, config=cfg)
    res_n = naive_als_sweeps(ssvd, (4, 4, 3), factors, config=cfg)
    if not np.array_equal(res_d.core, res_n.core):
        print("[A14 smoke] FAIL: NumPy path is not bit-identical", file=sys.stderr)
        return 1

    placement = run_placement()
    if not placement["all_ok"]:
        bad = [r["case"] for r in placement["grid"] if not r["ok"]]
        print(f"[A14 smoke] FAIL: placement ranking wrong for {bad}", file=sys.stderr)
        return 1

    ws = SweepWorkspace(ssvd, module=_generic_module())
    res_g = als_sweeps(ssvd, (4, 4, 3), factors, config=cfg, workspace=ws)
    stats = res_g.kernel_stats
    if stats.bytes_h2d == 0 or stats.bytes_d2h == 0:
        print(
            "[A14 smoke] FAIL: pseudo-device sweep recorded no transfers "
            f"(h2d={stats.bytes_h2d} d2h={stats.bytes_d2h})",
            file=sys.stderr,
        )
        return 1
    dev = float(np.max(np.abs(res_g.core - res_d.core)))
    if dev > 1e-9:
        print(f"[A14 smoke] FAIL: generic sweep deviates {dev:.2e}", file=sys.stderr)
        return 1
    print(
        "[A14 smoke] OK: bit-identical NumPy path, placement ranking, "
        f"xfer accounting (h2d={stats.bytes_h2d}B d2h={stats.bytes_d2h}B)"
    )
    return 0


def _format(report: dict) -> str:
    lines = []
    ov = report["numpy_overhead"]
    lines.append(
        f"numpy path : dispatched={ov['dispatched_seconds'] * 1e3:.2f} ms "
        f"naive={ov['naive_seconds'] * 1e3:.2f} ms "
        f"ratio={ov['overhead_ratio']:.2f} bit_identical={ov['bit_identical']}"
    )
    gv = report["generic_overhead"]
    lines.append(
        f"generic    : native={gv['native_seconds'] * 1e3:.2f} ms "
        f"generic={gv['generic_seconds'] * 1e3:.2f} ms "
        f"ratio={gv['generic_ratio']:.2f} max_dev={gv['max_deviation']:.1e} "
        f"xfer={gv['bytes_h2d']}B>/{gv['bytes_d2h']}B<"
    )
    for row in report["placement"]["grid"]:
        lines.append(
            f"placement  : {row['case']:12s} ({row['i1']}x{row['i2']} "
            f"k={row['rank']} {row['method']}) -> {row['placed']} "
            f"({'ok' if row['ok'] else 'EXPECTED ' + row['expected']})"
        )
    tp = report["torch_parity"]
    if isinstance(tp, dict):
        lines.append(
            f"torch      : max_dev={tp['max_deviation']:.1e} "
            f"within_1e-6={tp['within_1e6']}"
        )
    else:
        lines.append(f"torch      : {tp}")
    return "\n".join(lines)


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a14_smoke(benchmark) -> None:
    """Bit-identity + placement + xfer accounting at a quick scale."""

    def run() -> int:
        return smoke()

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 0


def test_a14_report(benchmark) -> None:
    """Full comparison; writes BENCH_device.json at the repo root."""

    def run() -> dict:
        return run_all(repeats=3)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A14_device_layer", text)
    print(f"\n[A14] device layer -> {path} and {JSON_PATH}\n{text}")
    assert report["numpy_overhead"]["bit_identical"]
    assert report["placement"]["all_ok"]
    assert report["generic_overhead"]["max_deviation"] < 1e-8
    tp = report["torch_parity"]
    if isinstance(tp, dict):
        assert tp["within_1e6"], tp


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: bit-identity, placement ranking, xfer accounting",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per variant"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_all(repeats=args.repeats)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report))
    print(f"wrote {JSON_PATH}")
    ok = (
        report["numpy_overhead"]["bit_identical"]
        and report["placement"]["all_ok"]
        and report["generic_overhead"]["max_deviation"] < 1e-8
    )
    if not ok:
        print("[A14] FAIL: see report above", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
