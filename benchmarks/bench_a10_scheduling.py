"""A10 — cost-aware scheduling: static vs dynamic work-stealing execution.

Two sections, both on the thread backend with >= 4 workers:

* **engine** (the acceptance gate): a skewed *latency-bound* workload —
  each item performs a GIL-releasing stall proportional to its cost, the
  way non-resident slice batches wait on storage rather than the ALU.  A
  few heavy items sit at the front of the range, so the static equal-count
  plan hands one worker nearly all the work while the oversplit dynamic
  queue drains work-stealing-style into a balanced finish.  Because the
  stalls release the GIL, the measured speedup is core-count independent
  and reproducible inside single-CPU CI containers.  Three variants run:

  - ``static`` — one equal-count chunk per worker (costs unknown);
  - ``dynamic`` — oversplit queue, no cost model (pure work stealing);
  - ``dynamic+costs`` — oversplit queue with per-item costs, so chunk
    boundaries are cost-balanced and the heaviest chunks are submitted
    first (longest processing time first).

  The gate is ``>= 1.3x`` for the best dynamic variant over static, and
  all three variants must return bit-identical outputs.

* **solver** (informative, full run only): the approximation phase on a
  sparse tensor with strongly mixed per-slice nnz, static vs dynamic,
  reporting wall clock, imbalance ratio, and steal counts from the phase
  traces.  No gate — a compute-bound section needs real spare cores to
  speed up, which CI containers do not promise.

The machine-readable report lands at ``BENCH_schedule.json`` in the repo
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_a10_scheduling.py           # full
    PYTHONPATH=src python benchmarks/bench_a10_scheduling.py --smoke   # CI

``--smoke`` runs the engine section only (two repeats, same 1.3x gate)
and exits non-zero when the dynamic win or the bit-identity contract
regresses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_schedule.json"

SEED = 0
N_WORKERS = 4

#: Engine-section workload: per-item cost units (seconds = cost * SCALE).
#: The heavy items are contiguous at the front — the adversarial layout for
#: an equal-count static split, and a common one in practice (e.g. the
#: densest slices of a time-evolving tensor clustered at one end).
N_ITEMS = 32
HEAVY_COUNT = 8
HEAVY, LIGHT = 8.0, 1.0
SCALE = 0.004  # seconds per cost unit -> ~350 ms of total stall per run

#: Solver-section sparse tensor: a few near-dense slices, many near-empty.
SOLVER_SHAPE = (96, 64, 24)
SOLVER_HEAVY_SLICES = 4
SOLVER_RANK = 6


def skewed_costs(n_items: int = N_ITEMS, heavy_count: int = HEAVY_COUNT) -> np.ndarray:
    costs = np.full(int(n_items), LIGHT)
    costs[: int(heavy_count)] = HEAVY
    return costs


def latency_kernel(costs: np.ndarray, *, scale: float) -> np.ndarray:
    """Per-item GIL-releasing stall proportional to cost, then a tiny op.

    Emulates an IO-latency-bound fetch+process loop: ``time.sleep`` stands
    in for the storage wait (it releases the GIL exactly like a real read),
    and the arithmetic afterwards is the per-item result the schedules must
    reproduce bit for bit.
    """
    out = np.empty_like(costs)
    for i in range(costs.shape[0]):
        time.sleep(float(costs[i]) * scale)
        out[i] = costs[i] * 2.0 + 1.0
    return out


def _run_engine_variant(engine, costs, schedule, *, with_costs, scale=SCALE):
    from repro.engine import chunked, concat_chunks

    with engine.phase(f"a10-{schedule}{'+costs' if with_costs else ''}") as trace:
        t0 = time.perf_counter()
        out = chunked(
            engine,
            latency_kernel,
            len(costs),
            slabs=(costs,),
            broadcast={"scale": scale},
            reduce=concat_chunks,
            costs=costs if with_costs else None,
            schedule=schedule,
        )
        seconds = time.perf_counter() - t0
    return out, seconds, trace


def run_engine_section(*, repeats: int = 3, n_workers: int = N_WORKERS) -> dict:
    """Time the three scheduling variants on the skewed latency workload."""
    from repro.engine import ThreadBackend

    costs = skewed_costs()
    variants = {
        "static": ("static", False),
        "dynamic": ("dynamic", False),
        "dynamic+costs": ("dynamic", True),
    }
    report: dict = {
        "n_items": N_ITEMS,
        "n_workers": int(n_workers),
        "heavy_count": HEAVY_COUNT,
        "cost_skew": HEAVY / LIGHT,
    }
    outs: dict[str, np.ndarray] = {}
    with ThreadBackend(n_workers=n_workers) as engine:
        # Warm the pool so the first timed variant does not pay thread spawn.
        _run_engine_variant(engine, costs, "static", with_costs=False, scale=0.0)
        best: dict[str, dict] = {}
        for _ in range(max(1, int(repeats))):
            for name, (schedule, with_costs) in variants.items():
                out, seconds, trace = _run_engine_variant(
                    engine, costs, schedule, with_costs=with_costs
                )
                outs[name] = out
                if name not in best or seconds < best[name]["seconds"]:
                    best[name] = {
                        "seconds": seconds,
                        "imbalance_ratio": trace.imbalance_ratio(),
                        "steals": trace.steals,
                        "queue_wait_seconds": trace.queue_wait_seconds,
                        "n_tasks": trace.n_tasks,
                    }
    report.update(best)
    report["bit_identical"] = bool(
        np.array_equal(outs["static"], outs["dynamic"])
        and np.array_equal(outs["static"], outs["dynamic+costs"])
    )
    static = best["static"]["seconds"]
    report["speedup_dynamic_vs_static"] = static / best["dynamic"]["seconds"]
    report["speedup_dynamic_costs_vs_static"] = (
        static / best["dynamic+costs"]["seconds"]
    )
    report["best_dynamic_speedup"] = max(
        report["speedup_dynamic_vs_static"],
        report["speedup_dynamic_costs_vs_static"],
    )
    return report


def _skewed_sparse():
    """A sparse tensor whose per-slice nnz spans ~40x: the cost-model case."""
    from repro.sparse import SparseTensor

    rng = np.random.default_rng(SEED)
    dense = np.zeros(SOLVER_SHAPE)
    for l in range(SOLVER_SHAPE[2]):
        density = 0.8 if l < SOLVER_HEAVY_SLICES else 0.02
        mask = rng.random(SOLVER_SHAPE[:2]) < density
        dense[..., l][mask] = rng.standard_normal(int(mask.sum()))
    return SparseTensor.from_dense(dense)


def run_solver_section(*, n_workers: int = N_WORKERS) -> dict:
    """Static vs dynamic on a real mixed-nnz sparse compression (no gate)."""
    from repro.core.sparse_dtucker import compress_sparse
    from repro.engine import ThreadBackend

    tensor = _skewed_sparse()
    nnz = tensor.slice_nnz()
    report: dict = {
        "shape": list(SOLVER_SHAPE),
        "rank": SOLVER_RANK,
        "n_workers": int(n_workers),
        "slice_nnz_min": int(nnz.min()),
        "slice_nnz_max": int(nnz.max()),
    }
    results = {}
    for schedule in ("static", "dynamic"):
        with ThreadBackend(n_workers=n_workers, schedule=schedule) as engine:
            t0 = time.perf_counter()
            ssvd = compress_sparse(tensor, SOLVER_RANK, engine=engine, rng=SEED)
            seconds = time.perf_counter() - t0
            traces = [t for t in engine.traces if t.n_tasks > 1]
            report[schedule] = {
                "seconds": seconds,
                "imbalance_ratio": max(
                    (t.imbalance_ratio() for t in traces), default=1.0
                ),
                "steals": sum(t.steals for t in traces),
                "schedules": sorted({s for t in traces for s in t.schedules}),
            }
            results[schedule] = ssvd
    a, b = results["static"], results["dynamic"]
    report["bit_identical"] = bool(
        np.array_equal(a.u, b.u)
        and np.array_equal(a.s, b.s)
        and np.array_equal(a.vt, b.vt)
    )
    report["speedup_dynamic_vs_static"] = (
        report["static"]["seconds"] / report["dynamic"]["seconds"]
    )
    return report


def run_all(*, repeats: int = 3) -> dict:
    return {
        "benchmark": "A10_scheduling",
        "seed": SEED,
        "backend": "thread",
        "engine": run_engine_section(repeats=repeats),
        "solver": run_solver_section(),
    }


def _check(report_engine: dict) -> int:
    """Shared acceptance gate: dynamic win and bit-identity."""
    if not report_engine["bit_identical"]:
        print(
            "[A10] FAIL: static and dynamic schedules returned different "
            "results — the bit-identity contract is broken",
            file=sys.stderr,
        )
        return 1
    best = report_engine["best_dynamic_speedup"]
    if best < 1.3:
        print(
            f"[A10] FAIL: best dynamic-over-static speedup {best:.2f}x "
            "below the 1.3x target on the skewed latency workload",
            file=sys.stderr,
        )
        return 1
    return 0


def smoke() -> int:
    """Fast CI guard: engine section only, same gate."""
    report = run_engine_section(repeats=2)
    print(
        f"[A10 smoke] static={report['static']['seconds'] * 1e3:.1f}ms "
        f"(imbalance={report['static']['imbalance_ratio']:.2f}) "
        f"dynamic={report['dynamic']['seconds'] * 1e3:.1f}ms "
        f"(imbalance={report['dynamic']['imbalance_ratio']:.2f}, "
        f"steals={report['dynamic']['steals']}) "
        f"best_speedup={report['best_dynamic_speedup']:.2f}x "
        f"bit_identical={report['bit_identical']}"
    )
    rc = _check(report)
    if rc == 0:
        print("[A10 smoke] OK: dynamic >= 1.3x on the skewed workload")
    return rc


def _format(report: dict) -> str:
    eng = report["engine"]
    lines = [
        f"engine: {eng['n_items']} items, {eng['heavy_count']} heavy "
        f"({eng['cost_skew']:.0f}x), {eng['n_workers']} workers",
    ]
    for name in ("static", "dynamic", "dynamic+costs"):
        v = eng[name]
        lines.append(
            f"  {name:14s} {v['seconds'] * 1e3:8.1f} ms  "
            f"imbalance={v['imbalance_ratio']:5.2f}  steals={v['steals']:3d}  "
            f"tasks={v['n_tasks']}"
        )
    lines.append(
        f"  speedup: dynamic={eng['speedup_dynamic_vs_static']:.2f}x  "
        f"dynamic+costs={eng['speedup_dynamic_costs_vs_static']:.2f}x  "
        f"bit_identical={eng['bit_identical']}"
    )
    sol = report["solver"]
    lines.append(
        f"solver: sparse {tuple(sol['shape'])} rank={sol['rank']} "
        f"nnz/slice {sol['slice_nnz_min']}..{sol['slice_nnz_max']}"
    )
    for name in ("static", "dynamic"):
        v = sol[name]
        lines.append(
            f"  {name:14s} {v['seconds'] * 1e3:8.1f} ms  "
            f"imbalance={v['imbalance_ratio']:5.2f}  steals={v['steals']:3d}"
        )
    lines.append(
        f"  speedup: dynamic={sol['speedup_dynamic_vs_static']:.2f}x  "
        f"bit_identical={sol['bit_identical']}"
    )
    return "\n".join(lines)


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a10_engine_small(benchmark) -> None:
    """Quick-scale engine section: gate the dynamic win and bit-identity."""

    def run() -> dict:
        return run_engine_section(repeats=2)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report["bit_identical"]
    assert report["best_dynamic_speedup"] >= 1.3, report


def test_a10_report(benchmark) -> None:
    """Full comparison; writes BENCH_schedule.json at the repo root."""

    def run() -> dict:
        return run_all()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A10_scheduling", text)
    print(f"\n[A10] scheduling -> {path} and {JSON_PATH}\n{text}")
    assert report["solver"]["bit_identical"]
    assert _check(report["engine"]) == 0


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: engine section only, 1.3x gate",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per variant"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_all(repeats=args.repeats)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report))
    print(f"wrote {JSON_PATH}")
    if not report["solver"]["bit_identical"]:
        print("[A10] FAIL: solver results differ across schedules", file=sys.stderr)
        return 1
    return _check(report["engine"])


if __name__ == "__main__":
    raise SystemExit(main())
