"""Benchmark-suite configuration: make `benchmarks/` importable as scripts."""

from __future__ import annotations

import sys
from pathlib import Path

# Benchmarks import the sibling `_util` module; ensure the directory is on
# the path regardless of the pytest invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
