"""A1 — ablation: SVD-based initialization vs random initialization.

Measures the value of D-Tucker's initialization phase (DESIGN.md §5.1):
sweeps-to-converge, time, and final error with the paper's SVD start vs a
random orthonormal start, on every dataset.  Expected shape: the SVD start
converges in a fraction of the sweeps at equal or better error.
"""

from __future__ import annotations

import pytest
from _util import PAPER_DATASETS, bench_scale, cached_dataset, write_result

from repro.core.dtucker import DTucker
from repro.experiments.report import format_table

ROWS: list[list[object]] = []


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
@pytest.mark.parametrize("init", ["svd", "random"])
def test_a1_init(benchmark, dataset: str, init: str) -> None:
    data = cached_dataset(dataset)

    def run() -> DTucker:
        return DTucker(
            data.ranks, init=init, seed=0, max_iters=50, tol=1e-6
        ).fit(data.tensor)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    ROWS.append(
        [
            dataset,
            init,
            model.n_iters_,
            f"{model.timings_.total:.4f}",
            f"{model.history_[0]:.6f}",
            f"{model.history_[-1]:.6f}",
        ]
    )


def test_a1_report(benchmark) -> None:
    def build() -> str:
        table = format_table(
            ["dataset", "init", "sweeps", "time_s", "sweep1_error", "final_error"],
            ROWS,
        )
        return f"scale={bench_scale()}\n{table}"

    text = benchmark(build)
    # Shape check: the SVD start's *first-sweep* error already matches its
    # final error (the initialization did the work), is never worse than the
    # random start's first sweep, and final errors agree.  Sweeps-to-
    # tolerance is reported but not asserted — it is noisy near flat optima.
    by_key = {(r[0], r[1]): r for r in ROWS}
    for dataset in PAPER_DATASETS:
        svd_row, rand_row = by_key[(dataset, "svd")], by_key[(dataset, "random")]
        svd_first, svd_final = float(svd_row[4]), float(svd_row[5])
        rand_first, rand_final = float(rand_row[4]), float(rand_row[5])
        assert svd_first <= rand_first * 1.02 + 1e-6, dataset
        assert svd_first <= svd_final * 1.5 + 1e-3, dataset
        assert svd_final <= rand_final * 1.2 + 1e-4, dataset
    path = write_result("A1_init_ablation", text)
    print(f"\n[A1] init ablation -> {path}\n{text}")
