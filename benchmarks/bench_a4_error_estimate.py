"""A4 — calibration of the compressed-domain error estimate (DESIGN.md §5.4).

D-Tucker never reconstructs the tensor to check convergence; it estimates
``‖X − X̂‖²/‖X‖²`` as ``(‖X‖² − ‖G‖²)/‖X‖²`` from the stored norm and the
current core.  The estimate folds in the (fixed) slice-compression
residual, so it *upper-bounds* the true error by roughly that residual.
This benchmark measures the calibration gap per dataset, plus the HOSVD
rank-selection estimate of :func:`repro.core.rank_selection.estimate_error`
against the realised error.
"""

from __future__ import annotations

import pytest
from _util import PAPER_DATASETS, bench_scale, cached_dataset, write_result

from repro.core.dtucker import DTucker
from repro.core.rank_selection import estimate_error
from repro.experiments.report import format_table

ROWS: list[list[object]] = []


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_a4_estimate(benchmark, dataset: str) -> None:
    data = cached_dataset(dataset)

    def run() -> tuple[float, float, float]:
        model = DTucker(data.ranks, seed=0).fit(data.tensor)
        true_err = model.result_.error(data.tensor)
        estimated = model.history_[-1]
        permuted_ranks = tuple(data.ranks[p] for p in model.permutation_)
        hosvd_bound = estimate_error(model.slice_svd_, permuted_ranks)
        return true_err, estimated, hosvd_bound

    true_err, estimated, hosvd_bound = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ROWS.append(
        [
            dataset,
            f"{true_err:.6f}",
            f"{estimated:.6f}",
            f"{hosvd_bound:.6f}",
            f"{estimated - true_err:+.6f}",
        ]
    )
    # The convergence estimate tracks truth to within the compression
    # residual; the HOSVD bound is a genuine upper bound.
    assert estimated == pytest.approx(true_err, abs=max(0.02, 0.3 * true_err))
    assert hosvd_bound >= true_err - 1e-6


def test_a4_report(benchmark) -> None:
    def build() -> str:
        table = format_table(
            ["dataset", "true_error", "estimate", "hosvd_bound", "gap"], ROWS
        )
        return f"scale={bench_scale()}\n{table}"

    text = benchmark(build)
    path = write_result("A4_error_estimate", text)
    print(f"\n[A4] error-estimate calibration -> {path}\n{text}")
