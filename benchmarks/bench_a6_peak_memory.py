"""A6 — peak resident memory needed to decompose.

The paper's "memory-efficient" claim, measured directly: how much memory
must be resident to produce a Tucker decomposition?  Every baseline needs
the dense tensor in RAM (counted) plus its transient allocations
(tracemalloc, which traces NumPy buffers — see
:mod:`repro.metrics.peak_memory`).  D-Tucker can run its approximation
phase **out of core** (`compress_npy`, memory-mapped, slice batches) and
its remaining phases on the compressed representation only — so the tensor
never counts against it.

Expected shape: D-Tucker's peak is a fraction of the tensor size; every
baseline's peak is ≥ 1× the tensor.  Timing in this file is meaningless
(tracemalloc overhead); use F1 for time.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from _util import bench_scale, cached_dataset, write_result

from repro.core.initialization import initialize
from repro.core.iteration import als_sweeps
from repro.core.out_of_core import compress_npy
from repro.experiments.harness import run_method
from repro.experiments.report import format_table
from repro.metrics.peak_memory import measure_peak

DATASET = "boats"
BASELINES = ("tucker_als", "st_hosvd", "mach", "rtd")

ROWS: list[list[object]] = []


def _record(method: str, peak: int, tensor_nbytes: int) -> None:
    ROWS.append([method, peak, f"{peak / tensor_nbytes:.2f}"])


def test_a6_dtucker_out_of_core(benchmark, tmp_path_factory) -> None:
    data = cached_dataset(DATASET)
    path = Path(tempfile.mkdtemp(prefix="repro_a6_")) / "tensor.npy"
    np.save(path, data.tensor)

    def run():
        def solve():
            ssvd = compress_npy(path, max(data.ranks[:2]), batch_slices=32, rng=0)
            _, factors = initialize(ssvd, data.ranks)
            return als_sweeps(ssvd, data.ranks, factors)

        return measure_peak(solve)

    (_, peak) = benchmark.pedantic(run, rounds=1, iterations=1)
    # The tensor lives on disk: only the traced allocations are resident.
    _record("dtucker (out-of-core)", peak, data.tensor.nbytes)


@pytest.mark.parametrize("method", BASELINES)
def test_a6_baseline_peak(benchmark, method: str) -> None:
    data = cached_dataset(DATASET)

    def run():
        return measure_peak(
            lambda: run_method(
                method,
                data.tensor,
                data.ranks,
                dataset=DATASET,
                seed=0,
                compute_error=False,
            )
        )

    (_, transient) = benchmark.pedantic(run, rounds=1, iterations=1)
    # The dense tensor must be resident for these methods; count it.
    _record(method, transient + data.tensor.nbytes, data.tensor.nbytes)


def test_a6_report(benchmark) -> None:
    data = cached_dataset(DATASET)

    def build() -> str:
        table = format_table(
            ["method", "peak_resident_bytes", "peak / tensor_size"], ROWS
        )
        return (
            f"scale={bench_scale()}, dataset={DATASET}, "
            f"tensor={data.tensor.nbytes}B\n{table}"
        )

    text = benchmark(build)
    by_method = {r[0]: int(r[1]) for r in ROWS}
    dt = by_method["dtucker (out-of-core)"]
    # Shape: D-Tucker decomposes with less resident memory than the tensor
    # itself; every baseline needs at least the tensor.
    assert dt < data.tensor.nbytes, by_method
    for method in BASELINES:
        assert dt < by_method[method], (method, by_method)
    path = write_result("A6_peak_memory", text)
    print(f"\n[A6] peak resident memory -> {path}\n{text}")
