"""A8 — sweep-level kernel layer: cached vs naive iteration hot path.

Runs the compressed-domain ALS sweep loop twice from identical initial
factors on a 4-order synthetic tensor (Serial backend, fixed seed):

* :func:`repro.kernels.naive.naive_als_sweeps` — the historical loop that
  recomputes every slice projection per mode and evaluates the
  doubly-projected ``W`` tensor twice per sweep, and
* :func:`repro.core.als_sweeps` — the :class:`~repro.kernels.SweepWorkspace`
  path with projection caches, memoized TTM-chain planning and preallocated
  scratch buffers.

The two must agree *bit for bit* (core, factors, error sequence); the
benchmark records per-sweep wall clock and tracemalloc peak allocations for
both and writes the machine-readable ``BENCH_iteration.json`` at the repo
root.  The kernel-layer acceptance target is a >= 1.5x per-sweep speedup.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_a8_sweep_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_a8_sweep_kernels.py --smoke   # CI

``--smoke`` is the fast perf-regression guard used by CI: it runs a few
sweeps on a small tensor and exits non-zero if the workspace performed more
than one ``W`` evaluation per sweep (i.e. the redundant second
``w_tensor`` call ever comes back).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_iteration.json"

#: 900 slices of 100x100 with slice rank 40: the per-slice projection GEMMs
#: (the part the workspace caches) scale with the slice rank and dominate
#: the per-sweep cost, while the shared work (SVDs, unfolds, trailing-mode
#: products) stays fixed.
SHAPE = (100, 100, 30, 30)
RANKS = (5, 5, 3, 3)
SLICE_RANK = 40
SWEEPS = 8
SEED = 0

SMOKE_SHAPE = (30, 30, 6, 5)
SMOKE_RANKS = (4, 4, 3, 3)
SMOKE_SWEEPS = 3


def _setup(shape, ranks, slice_rank, sweeps):
    """Compress a synthetic tensor once and build shared initial factors."""
    from repro.core.config import DTuckerConfig
    from repro.core.initialization import initialize
    from repro.core.slice_svd import compress
    from repro.tensor.random import random_tensor

    # tol must be positive; 1e-300 keeps every run at exactly `sweeps` sweeps
    # so per-sweep averages are comparable.
    cfg = DTuckerConfig(seed=SEED, backend="serial", max_iters=sweeps, tol=1e-300)
    # Enough noise that the error sequence keeps moving: with a near-exact
    # low-rank tensor the sweeps hit a bit-identical error fixed point early
    # and both paths stop before `sweeps`, hurting per-sweep amortisation.
    x = random_tensor(shape, ranks, rng=SEED, noise=0.3)
    ssvd = compress(x, slice_rank, config=cfg)
    _, factors = initialize(ssvd, ranks)
    return cfg, ssvd, factors


def _timed_pair(fn_a, fn_b, *, trace_alloc: bool, repeats: int = 9):
    """Best-of-``repeats`` wall clock for two callables, interleaved.

    Each loop runs in ~100 ms, so single-pass timings carry several ms of
    scheduler noise and the machine's throughput drifts over seconds;
    alternating A/B within each repeat cancels the drift, and the minimum
    over repeats is the standard stable estimator.  Allocation peaks are
    recorded in a separate pass because tracemalloc itself slows the run.
    """
    outs = [None, None]
    secs = [float("inf"), float("inf")]
    for _ in range(max(1, int(repeats))):
        for i, fn in enumerate((fn_a, fn_b)):
            t0 = time.perf_counter()
            outs[i] = fn()
            secs[i] = min(secs[i], time.perf_counter() - t0)
    peaks = [None, None]
    if trace_alloc:
        for i, fn in enumerate((fn_a, fn_b)):
            tracemalloc.start()
            fn()
            _, peaks[i] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
    return outs, secs, peaks


def run_comparison(
    shape=SHAPE,
    ranks=RANKS,
    slice_rank=SLICE_RANK,
    sweeps=SWEEPS,
    *,
    trace_alloc: bool = True,
) -> dict:
    """Time naive vs workspace sweeps and verify bit-identical results."""
    from repro.core.iteration import als_sweeps
    from repro.kernels.naive import naive_als_sweeps

    cfg, ssvd, factors = _setup(shape, ranks, slice_rank, sweeps)

    def naive():
        return naive_als_sweeps(
            ssvd, ranks, [a.copy() for a in factors], config=cfg
        )

    def cached():
        return als_sweeps(ssvd, ranks, [a.copy() for a in factors], config=cfg)

    # Warm-up once each (BLAS thread pools, import costs), then measure.
    naive()
    cached()
    outs, secs, peaks = _timed_pair(naive, cached, trace_alloc=trace_alloc)
    naive_out, cached_out = outs
    naive_s, cached_s = secs
    naive_peak, cached_peak = peaks

    # Bit-identity contract: the kernel layer only reuses values the naive
    # path would have recomputed from identical inputs.
    np.testing.assert_array_equal(cached_out.core, naive_out.core)
    for got, ref in zip(cached_out.factors, naive_out.factors):
        np.testing.assert_array_equal(got, ref)
    np.testing.assert_array_equal(cached_out.errors, naive_out.errors)

    stats = cached_out.kernel_stats
    assert stats is not None and stats.sweeps == len(cached_out.errors)
    # Both paths may converge before `sweeps` (their error sequences are
    # bit-identical, so they always stop at the same sweep); normalise by
    # the sweeps actually run.
    done = stats.sweeps
    report = {
        "benchmark": "A8_sweep_kernels",
        "shape": list(shape),
        "ranks": list(ranks),
        "slice_rank": slice_rank,
        "sweeps": done,
        "seed": SEED,
        "backend": "serial",
        "bit_identical": True,
        "naive": {
            "total_s": naive_s,
            "per_sweep_s": naive_s / done,
            "peak_alloc_bytes": naive_peak,
        },
        "workspace": {
            "total_s": cached_s,
            "per_sweep_s": cached_s / done,
            "peak_alloc_bytes": cached_peak,
            "kernel_stats": stats.as_dict(),
            "w_evals_per_sweep": stats.w_evals_per_sweep(),
        },
        "speedup": naive_s / cached_s,
    }
    return report


#: Peak-allocation guard for ``--smoke``: the workspace path preallocates
#: its scratch buffers, so its tracemalloc peak sits above the naive loop's
#: (~1.7x at smoke scale, ~1.3x at full scale) — but a stray copy of the
#: slice stacks or a duplicated buffer pushes it past 2x and must fail CI.
SMOKE_PEAK_RATIO_LIMIT = 2.0


def smoke() -> int:
    """Fast CI guard: W evaluations per sweep and peak-allocation ratio."""
    from repro.core.iteration import als_sweeps
    from repro.kernels.naive import naive_als_sweeps

    cfg, ssvd, factors = _setup(SMOKE_SHAPE, SMOKE_RANKS, 6, SMOKE_SWEEPS)

    def naive():
        return naive_als_sweeps(
            ssvd, SMOKE_RANKS, [a.copy() for a in factors], config=cfg
        )

    def cached():
        return als_sweeps(ssvd, SMOKE_RANKS, [a.copy() for a in factors], config=cfg)

    out = cached()
    stats = out.kernel_stats
    assert stats is not None
    per_sweep = stats.w_evals_per_sweep()
    peaks = {}
    for name, fn in (("naive", naive), ("workspace", cached)):
        fn()  # warm so one-time import/BLAS allocations stay out of the peak
        tracemalloc.start()
        fn()
        _, peaks[name] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    ratio = peaks["workspace"] / peaks["naive"]
    print(
        f"[A8 smoke] sweeps={stats.sweeps} w_evals={stats.w_evals} "
        f"per_sweep={per_sweep:.2f} peak_alloc_bytes={peaks['workspace']} "
        f"(naive={peaks['naive']}, ratio={ratio:.2f}) ({stats.summary()})"
    )
    if per_sweep > 1.0:
        print(
            "[A8 smoke] FAIL: more than one W evaluation per sweep — the "
            "redundant w_tensor rebuild is back",
            file=sys.stderr,
        )
        return 1
    if ratio > SMOKE_PEAK_RATIO_LIMIT:
        print(
            f"[A8 smoke] FAIL: workspace peak allocations {ratio:.2f}x the "
            f"naive loop (limit {SMOKE_PEAK_RATIO_LIMIT}x) — a scratch "
            "buffer or slice-stack copy regressed",
            file=sys.stderr,
        )
        return 1
    print(
        "[A8 smoke] OK: <= 1 W evaluation per sweep, peak allocations "
        f"within {SMOKE_PEAK_RATIO_LIMIT}x of naive"
    )
    return 0


def _format(report: dict) -> str:
    n, w = report["naive"], report["workspace"]
    lines = [
        f"shape={tuple(report['shape'])} ranks={tuple(report['ranks'])} "
        f"slice_rank={report['slice_rank']} sweeps={report['sweeps']} "
        f"backend={report['backend']} seed={report['seed']}",
        f"naive:     {n['per_sweep_s'] * 1e3:9.2f} ms/sweep"
        + (
            f"  peak_alloc={n['peak_alloc_bytes'] / 2**20:.1f}MiB"
            if n["peak_alloc_bytes"] is not None
            else ""
        ),
        f"workspace: {w['per_sweep_s'] * 1e3:9.2f} ms/sweep"
        + (
            f"  peak_alloc={w['peak_alloc_bytes'] / 2**20:.1f}MiB"
            if w["peak_alloc_bytes"] is not None
            else ""
        ),
        f"speedup:   {report['speedup']:.2f}x  "
        f"w_evals/sweep={w['w_evals_per_sweep']:.2f}  bit_identical=True",
    ]
    return "\n".join(lines)


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a8_sweep_kernels(benchmark) -> None:
    """Parity + cache economics at a scale quick enough for every run."""

    def run() -> dict:
        return run_comparison(
            shape=(60, 60, 8, 6),
            ranks=(5, 5, 4, 4),
            slice_rank=8,
            sweeps=4,
            trace_alloc=False,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report["bit_identical"]
    assert report["workspace"]["w_evals_per_sweep"] <= 1.0


def test_a8_report(benchmark) -> None:
    """Full-size comparison; writes BENCH_iteration.json at the repo root."""

    def run() -> dict:
        return run_comparison()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A8_sweep_kernels", text)
    print(f"\n[A8] sweep kernels -> {path} and {JSON_PATH}\n{text}")
    assert report["workspace"]["w_evals_per_sweep"] <= 1.0
    # Acceptance target of the kernel layer.
    assert report["speedup"] >= 1.5, report["speedup"]


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: fail if per-sweep W evaluations exceed 1",
    )
    parser.add_argument(
        "--sweeps", type=int, default=SWEEPS, help="ALS sweeps to time"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_comparison(sweeps=args.sweeps)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report))
    print(f"wrote {JSON_PATH}")
    if report["speedup"] < 1.5:
        print(
            f"[A8] WARNING: speedup {report['speedup']:.2f}x below the 1.5x "
            "target on this machine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
