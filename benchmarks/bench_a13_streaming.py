"""A13 — streaming ingest: O(block) incremental updates vs full refit.

One section: a stationary low-rank temporal tensor is streamed block by
block into three :class:`repro.core.streaming.StreamingDTucker` instances —
``update="refit"`` (the historical behaviour: full warm ALS over all
accumulated slices per ingest), ``update="incremental"`` (projection
caches carried across updates, only the new block's rows computed) and
``update="sketch"`` (incremental plus frequent-directions factor
refreshes).  At each target extent T the steady-state per-update latency
(median of the last few ingests) and the final estimated error are
recorded.

Gates (full run):

* per-update latency is **flat** for incremental and sketch —
  ``time(FLAT_EXTENT) / time(T_min) <= 1.3`` over the 64 -> 1024 span —
  while refit **grows** ``>= 4x`` over the full 64 -> 2048 range (the
  longer span lets the O(T) sweep cost dominate refit's fixed per-block
  compression cost, which is extent-independent for every mode);
* final error of both online modes stays within ``1.05x`` of refit.

The machine-readable report lands at ``BENCH_stream.json`` in the repo
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_a13_streaming.py           # full
    PYTHONPATH=src python benchmarks/bench_a13_streaming.py --smoke   # CI

``--smoke`` streams to smaller extents and gates the incremental mode
only: flat growth (<= 1.3x) plus ``>= 2x`` incremental-over-refit
per-update latency at the largest smoke extent.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_stream.json"

SEED = 0
SHAPE_SLICES = (128, 96)  # (I1, I2) of every temporal slice
RANKS = (6, 6, 8)
SLICE_RANK = 10
BLOCK_STEPS = 16
SWEEPS_PER_UPDATE = 15
EXTENTS = (64, 256, 1024, 2048)

#: Span for the online-flatness gate (the refit-growth gate uses the full
#: extent range: its O(T) term needs the longer run to dominate the fixed
#: per-block compression cost).
FLAT_EXTENT = 1024
SMOKE_EXTENTS = (64, 768)

#: Updates whose latency forms the steady-state median at each extent.
TIMED_TAIL = 6

FLAT_LIMIT = 1.3
REFIT_GROWTH_FLOOR = 4.0
ERROR_LIMIT = 1.05
SMOKE_SPEEDUP_FLOOR = 2.0


def make_stream(t_max: int) -> np.ndarray:
    """A stationary low-rank temporal tensor (fixed Tucker structure + noise)."""
    from repro.tensor.random import default_rng, random_tensor

    rng = default_rng(SEED)
    return random_tensor(SHAPE_SLICES + (t_max,), RANKS, rng=rng, noise=0.02)


def stream_mode(x: np.ndarray, mode: str, extents: tuple[int, ...]) -> dict:
    """Ingest ``x`` block by block; record steady-state latency per extent.

    One model instance streams the full range; at each target extent the
    median of the last ``TIMED_TAIL`` per-update wall-clock times is taken
    — by then the accumulated extent ≈ the target, so refit's O(T) cost is
    fully visible while the online modes only ever touch the block.
    """
    from repro.core.streaming import StreamingDTucker

    from repro.core.config import DTuckerConfig

    # A tiny tolerance pins every refit update to exactly
    # SWEEPS_PER_UPDATE sweeps (no early stopping), so the per-update
    # latency reflects a fixed sweep budget at every extent.
    model = StreamingDTucker(
        RANKS,
        slice_rank=SLICE_RANK,
        sweeps_per_update=SWEEPS_PER_UPDATE,
        config=DTuckerConfig(seed=SEED, tol=1e-12),
        update=mode,
    )
    targets = sorted(extents)
    out: dict = {"per_update_ms": {}, "error": {}}
    latencies: list[float] = []
    t_done = 0
    for t0 in range(0, targets[-1], BLOCK_STEPS):
        block = x[:, :, t0 : t0 + BLOCK_STEPS]
        start = time.perf_counter()
        model.partial_fit(block)
        latencies.append(time.perf_counter() - start)
        t_done += block.shape[-1]
        if t_done in targets:
            tail = latencies[-TIMED_TAIL:]
            # min over the tail: the noise-robust latency statistic —
            # scheduling hiccups only ever add time.
            out["per_update_ms"][str(t_done)] = min(tail) * 1e3
            out["error"][str(t_done)] = float(model.history_[-1])
    if mode != "refit":
        stats = model.kernel_stats_
        out["proj_cached_rows"] = stats.hits_for("stream:proj")
        out["proj_computed_rows"] = stats.misses_for("stream:proj")
    return out


def run_section(extents: tuple[int, ...] = EXTENTS) -> dict:
    x = make_stream(max(extents))
    report: dict = {
        "slice_shape": list(SHAPE_SLICES),
        "ranks": list(RANKS),
        "block_steps": BLOCK_STEPS,
        "slice_rank": SLICE_RANK,
        "sweeps_per_update": SWEEPS_PER_UPDATE,
        "extents": list(extents),
    }
    for mode in ("refit", "incremental", "sketch"):
        report[mode] = stream_mode(x, mode, extents)
    t_min, t_max = str(min(extents)), str(max(extents))
    # Online flatness is judged on the 64 -> 1024 span; refit growth over
    # the full range, where the O(T) term dwarfs the fixed per-block cost.
    t_flat = str(FLAT_EXTENT) if FLAT_EXTENT in extents else t_max
    for mode in ("refit", "incremental", "sketch"):
        times = report[mode]["per_update_ms"]
        report[mode]["growth"] = times[t_max] / times[t_min]
        report[mode]["flat_growth"] = times[t_flat] / times[t_min]
    report["flat_extent"] = int(t_flat)
    report["speedup_incremental_vs_refit"] = (
        report["refit"]["per_update_ms"][t_max]
        / report["incremental"]["per_update_ms"][t_max]
    )
    report["speedup_sketch_vs_refit"] = (
        report["refit"]["per_update_ms"][t_max]
        / report["sketch"]["per_update_ms"][t_max]
    )
    refit_err = report["refit"]["error"][t_max]
    report["error_ratio_incremental"] = (
        report["incremental"]["error"][t_max] / refit_err
    )
    report["error_ratio_sketch"] = report["sketch"]["error"][t_max] / refit_err
    return report


def check_full(report: dict) -> int:
    failures = []
    t_flat = report["flat_extent"]
    for mode in ("incremental", "sketch"):
        if report[mode]["flat_growth"] > FLAT_LIMIT:
            failures.append(
                f"{mode} per-update growth {report[mode]['flat_growth']:.2f}x "
                f"to T={t_flat} exceeds the {FLAT_LIMIT}x flatness limit"
            )
    if report["refit"]["growth"] < REFIT_GROWTH_FLOOR:
        failures.append(
            f"refit per-update growth {report['refit']['growth']:.2f}x is "
            f"below the {REFIT_GROWTH_FLOOR}x floor (workload too small to "
            "expose the O(T) cost)"
        )
    for mode in ("incremental", "sketch"):
        ratio = report[f"error_ratio_{mode}"]
        if ratio > ERROR_LIMIT:
            failures.append(
                f"{mode} final error is {ratio:.3f}x refit "
                f"(limit {ERROR_LIMIT}x)"
            )
    for msg in failures:
        print(f"[A13] FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


def check_smoke(report: dict) -> int:
    failures = []
    t_max = str(max(report["extents"]))
    speedup = (
        report["refit"]["per_update_ms"][t_max]
        / report["incremental"]["per_update_ms"][t_max]
    )
    if speedup < SMOKE_SPEEDUP_FLOOR:
        failures.append(
            f"incremental-over-refit per-update speedup {speedup:.2f}x at "
            f"T={t_max} is below the {SMOKE_SPEEDUP_FLOOR}x smoke floor"
        )
    if report["incremental"]["growth"] > FLAT_LIMIT:
        failures.append(
            f"incremental per-update growth {report['incremental']['growth']:.2f}x "
            f"exceeds the {FLAT_LIMIT}x flatness limit"
        )
    for msg in failures:
        print(f"[A13] FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


def _format(report: dict) -> str:
    lines = [
        "A13 streaming ingest: per-update latency (ms) by accumulated extent",
        f"  slices {tuple(report['slice_shape'])}, ranks "
        f"{tuple(report['ranks'])}, blocks of {report['block_steps']} steps",
    ]
    extents = [str(t) for t in report["extents"]]
    header = "  mode         " + "".join(f"T={t:>6} " for t in extents) + " growth"
    lines.append(header)
    for mode in ("refit", "incremental", "sketch"):
        times = report[mode]["per_update_ms"]
        row = f"  {mode:<12} " + "".join(f"{times[t]:8.2f} " for t in extents)
        row += f" {report[mode]['growth']:5.2f}x"
        lines.append(row)
    lines.append(
        f"  speedup at T={extents[-1]}: incremental "
        f"{report['speedup_incremental_vs_refit']:.2f}x, sketch "
        f"{report['speedup_sketch_vs_refit']:.2f}x over refit"
    )
    lines.append(
        f"  final error vs refit: incremental "
        f"{report['error_ratio_incremental']:.4f}x, sketch "
        f"{report['error_ratio_sketch']:.4f}x"
    )
    return "\n".join(lines)


def run_all() -> dict:
    return {"benchmark": "A13_streaming", "stream": run_section()}


def smoke() -> int:
    report = {"benchmark": "A13_streaming", "smoke": True,
              "stream": run_section(SMOKE_EXTENTS)}
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report["stream"]))
    return check_smoke(report["stream"])


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a13_stream_small(benchmark) -> None:
    """Quick-scale section: gate the incremental win and flatness."""

    def run() -> dict:
        return run_section(SMOKE_EXTENTS)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert check_smoke(report) == 0, report


def test_a13_report(benchmark) -> None:
    """Full comparison; writes BENCH_stream.json at the repo root."""

    def run() -> dict:
        return run_all()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report["stream"])
    from _util import write_result

    path = write_result("A13_streaming", text)
    print(f"\n[A13] streaming -> {path} and {JSON_PATH}\n{text}")
    assert check_full(report["stream"]) == 0


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: smaller extents, 2x incremental-over-refit gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_all()
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report["stream"]))
    print(f"wrote {JSON_PATH}")
    return check_full(report["stream"])


if __name__ == "__main__":
    raise SystemExit(main())
