"""T1 — the paper's analytic complexity-comparison table.

Evaluates every method's leading-term time/space model at the *paper's*
dataset geometries (not the scaled-down simulators), regenerating the
ordering the complexity table reports: D-Tucker's stored representation and
per-request cost beat every raw-tensor method by orders of magnitude.
"""

from __future__ import annotations

from _util import write_result

from repro.experiments.complexity import (
    COMPLEXITY_METHODS,
    space_estimate,
    time_estimate,
)
from repro.experiments.report import format_table

#: The paper's dataset geometries (Table "datasets" of the original paper).
PAPER_GEOMETRIES = {
    "boats": ((320, 240, 7000), 10),
    "walking": ((1080, 1980, 2400), 10),
    "stock": ((3028, 54, 3050), 10),
    "airquality": ((30562, 376, 6), 6),
    "hsi": ((1021, 1340, 33, 8), 8),
}


def build_table() -> str:
    rows = []
    for name, (shape, rank) in PAPER_GEOMETRIES.items():
        for method in COMPLEXITY_METHODS:
            rows.append(
                [
                    name,
                    method,
                    f"{time_estimate(method, shape, rank):.3e}",
                    f"{space_estimate(method, shape, rank):.3e}",
                ]
            )
    return format_table(["dataset", "method", "time_model", "space_model"], rows)


def check_ordering() -> None:
    """The model must reproduce the paper's ordering claims."""
    for name, (shape, rank) in PAPER_GEOMETRIES.items():
        dt_time = time_estimate("dtucker", shape, rank)
        dt_space = space_estimate("dtucker", shape, rank)
        assert dt_time < time_estimate("tucker_als", shape, rank), name
        for other in ("tucker_als", "hosvd", "rtd"):
            assert dt_space < space_estimate(other, shape, rank), (name, other)


def test_t1_complexity_table(benchmark) -> None:
    table = benchmark(build_table)
    check_ordering()
    path = write_result("T1_complexity", table)
    print(f"\n[T1] complexity models (paper geometries) -> {path}\n{table}")
