"""Shared helpers for the per-figure benchmark files.

Scale selection
---------------
Benchmarks default to the ``small`` dataset scale so that
``pytest benchmarks/ --benchmark-only`` completes in a few minutes on a
laptop.  Set ``REPRO_BENCH_SCALE=default`` (or ``large``) to run at the
scales used for the numbers recorded in EXPERIMENTS.md.

Result files
------------
Every figure/table benchmark writes its final text table to
``benchmarks/results/<id>.txt`` so the regenerated artifacts survive the
pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.datasets import LoadedDataset, load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Datasets mirroring the paper's evaluation set.
PAPER_DATASETS = ("boats", "walking", "stock", "airquality", "hsi")

#: Every solver in the method registry, D-Tucker first.
ALL_METHODS = (
    "dtucker",
    "tucker_als",
    "hosvd",
    "st_hosvd",
    "mach",
    "rtd",
    "tucker_ts",
    "tucker_ttmts",
)

#: Sketched methods must solve an ``s2 × ΠJ`` least squares problem per
#: sweep (``s2 = 10·ΠJ``); past this core size that is out-of-time on a
#: laptop, exactly like the "o.o.t." entries in the paper's figures.
SKETCH_CORE_LIMIT = 1500

#: Sweep cap for the sketched methods in benchmarks (their sketched
#: residual plateaus within a few sweeps; 50 sweeps would dominate the
#: whole suite without changing the figure).
SKETCH_MAX_ITERS = 10

_DATASET_CACHE: dict[tuple[str, str], LoadedDataset] = {}


def methods_for(ranks: tuple[int, ...]) -> tuple[str, ...]:
    """All methods runnable at these ranks; sketched ones drop out when
    their per-sweep core solve exceeds :data:`SKETCH_CORE_LIMIT` (o.o.t.)."""
    total = 1
    for r in ranks:
        total *= int(r)
    if total > SKETCH_CORE_LIMIT:
        return tuple(
            m for m in ALL_METHODS if m not in ("tucker_ts", "tucker_ttmts")
        )
    return ALL_METHODS


def method_kwargs(method: str) -> dict[str, object]:
    """Benchmark-time overrides per method (sweep caps for sketched ALS)."""
    if method in ("tucker_ts", "tucker_ttmts"):
        return {"max_iters": SKETCH_MAX_ITERS}
    return {}


def bench_scale() -> str:
    """Dataset scale for benchmarks (env ``REPRO_BENCH_SCALE``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def cached_dataset(name: str, scale: str | None = None) -> LoadedDataset:
    """Load a dataset once per benchmark session (they are deterministic)."""
    key = (name, scale or bench_scale())
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(key[0], key[1], seed=0)
    return _DATASET_CACHE[key]


def write_result(artifact_id: str, text: str) -> Path:
    """Persist a regenerated table/figure under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{artifact_id}.txt"
    path.write_text(text + "\n")
    return path
