"""A9 — adaptive compression planner: fixed rsvd vs auto vs float32.

Times the approximation phase three ways on synthetic order-3 and order-4
tensors (Serial backend, fixed seed):

* **fixed** — the historical default ``strategy="rsvd"`` (randomized SVD
  whenever the short slice side exceeds twice the sketch width);
* **auto** — ``strategy="auto"``: the flop model of
  :func:`repro.kernels.compress_plan.estimate_costs` picks per-shape among
  the exact, Gram and randomized methods;
* **float32** — ``strategy="auto"`` with ``precision="float32"`` (norms
  still accumulate in float64).

The shapes are chosen in the regime the planner targets: slices with one
short-ish side (``I2 = 48``) where the legacy dispatch still pays for a
full randomized pipeline but the Gram route is cheaper.  Each variant's
reconstruction error against the original tensor is recorded next to its
runtime, and the machine-readable ``BENCH_compress.json`` lands at the
repo root.  The planner acceptance target is a >= 1.5x compression-phase
speedup for auto over fixed on at least one configuration, with the
float32 error within 1e-2 of the float64 baseline.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_a9_compress_planner.py           # full
    PYTHONPATH=src python benchmarks/bench_a9_compress_planner.py --smoke   # CI

``--smoke`` is the fast perf-regression guard used by CI: it compresses a
small on-disk tensor batch-by-batch and exits non-zero if the planner ever
draws more than one Gaussian test matrix per batch (i.e. the shared-sketch
amortisation regressed), or if the float32 path drifts from the float64
result by more than 1e-2.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_compress.json"

#: (label, shape, tucker ranks of the synthetic, slice rank).  Slices are
#: (512, 48): short side 48 > 2*(8+10), so the legacy dispatch runs the
#: full randomized pipeline while the cost model routes to the Gram path.
CASES = [
    ("order3", (512, 48, 200), (8, 8, 5), 8),
    ("order4", (256, 40, 12, 8), (8, 8, 4, 3), 8),
]
SEED = 0

SMOKE_SHAPE = (24, 18, 4, 3)
SMOKE_RANK = 3
SMOKE_BATCH = 4


def _setup(shape, ranks):
    from repro.tensor.random import random_tensor

    return random_tensor(shape, ranks, rng=SEED, noise=0.05)


def _variants(slice_rank):
    """The three timed configurations (label -> DTuckerConfig)."""
    from repro.core.config import DTuckerConfig

    return {
        "fixed": DTuckerConfig(seed=SEED, backend="serial"),
        "auto": DTuckerConfig(seed=SEED, backend="serial", strategy="auto"),
        "float32": DTuckerConfig(
            seed=SEED, backend="serial", strategy="auto", precision="float32"
        ),
    }


def _timed_round_robin(fns: dict, *, repeats: int = 5):
    """Best-of-``repeats`` wall clock per callable, interleaved.

    Alternating the variants within each repeat cancels machine throughput
    drift; the minimum over repeats is the standard stable estimator.
    """
    outs = {name: None for name in fns}
    secs = {name: float("inf") for name in fns}
    for _ in range(max(1, int(repeats))):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            outs[name] = fn()
            secs[name] = min(secs[name], time.perf_counter() - t0)
    return outs, secs


def run_case(label, shape, ranks, slice_rank, *, repeats: int = 5) -> dict:
    """Time the three variants on one synthetic tensor."""
    from repro.core.slice_svd import compress
    from repro.kernels import KernelStats, plan_from_config

    x = _setup(shape, ranks)
    variants = _variants(slice_rank)

    fns = {
        name: (lambda cfg=cfg: compress(x, slice_rank, config=cfg))
        for name, cfg in variants.items()
    }
    for fn in fns.values():  # warm-up (BLAS pools, imports)
        fn()
    outs, secs = _timed_round_robin(fns, repeats=repeats)

    i1, i2 = shape[:2]
    report = {"case": label, "shape": list(shape), "slice_rank": slice_rank}
    for name, cfg in variants.items():
        stats = KernelStats()
        compress(x, slice_rank, config=cfg, stats=stats)
        report[name] = {
            "seconds": secs[name],
            "rel_error": float(np.sqrt(outs[name].compression_error(x))),
            "method": plan_from_config(i1, i2, slice_rank, cfg).method,
            "plan_decisions": stats.plan_decisions(),
            "sketch_draws": stats.sketch_draws,
        }
    report["speedup_auto_vs_fixed"] = secs["fixed"] / secs["auto"]
    report["speedup_float32_vs_fixed"] = secs["fixed"] / secs["float32"]
    report["float32_error_gap"] = abs(
        report["float32"]["rel_error"] - report["fixed"]["rel_error"]
    )
    return report


def run_all(*, repeats: int = 5) -> dict:
    cases = [
        run_case(label, shape, ranks, k, repeats=repeats)
        for label, shape, ranks, k in CASES
    ]
    return {
        "benchmark": "A9_compress_planner",
        "seed": SEED,
        "backend": "serial",
        "cases": cases,
        "best_speedup_auto_vs_fixed": max(
            c["speedup_auto_vs_fixed"] for c in cases
        ),
    }


def smoke() -> int:
    """Fast CI guard: sketch amortisation + float32 accuracy."""
    import tempfile

    from repro.core.config import DTuckerConfig
    from repro.core.out_of_core import compress_npy
    from repro.kernels import KernelStats
    from repro.tensor.slices import slice_count

    x = _setup(SMOKE_SHAPE, (3, 3, 2, 2))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "x.npy"
        np.save(path, x)
        stats = KernelStats()
        f64 = compress_npy(
            path, SMOKE_RANK, batch_slices=SMOKE_BATCH, rng=SEED, stats=stats
        )
        f32 = compress_npy(
            path,
            SMOKE_RANK,
            batch_slices=SMOKE_BATCH,
            rng=SEED,
            config=DTuckerConfig(strategy="auto", precision="float32"),
        )
    n_batches = -(-slice_count(x.shape) // SMOKE_BATCH)
    draws = stats.sketch_draws
    gap = abs(
        np.sqrt(f32.compression_error(x)) - np.sqrt(f64.compression_error(x))
    )
    print(
        f"[A9 smoke] batches={n_batches} sketch_draws={draws} "
        f"decisions={stats.plan_decisions()} float32_error_gap={gap:.2e}"
    )
    if draws > n_batches:
        print(
            "[A9 smoke] FAIL: more than one test-matrix draw per batch — "
            "the shared-sketch amortisation regressed",
            file=sys.stderr,
        )
        return 1
    if gap > 1e-2:
        print(
            f"[A9 smoke] FAIL: float32 error drifted {gap:.2e} > 1e-2 from "
            "the float64 baseline",
            file=sys.stderr,
        )
        return 1
    print("[A9 smoke] OK: <= 1 sketch draw per batch, float32 within 1e-2")
    return 0


def _format(report: dict) -> str:
    lines = []
    for case in report["cases"]:
        lines.append(
            f"{case['case']}: shape={tuple(case['shape'])} "
            f"slice_rank={case['slice_rank']}"
        )
        for name in ("fixed", "auto", "float32"):
            v = case[name]
            lines.append(
                f"  {name:8s} {v['seconds'] * 1e3:9.2f} ms  "
                f"rel_error={v['rel_error']:.2e}  method={v['method']}"
            )
        lines.append(
            f"  speedup: auto={case['speedup_auto_vs_fixed']:.2f}x "
            f"float32={case['speedup_float32_vs_fixed']:.2f}x  "
            f"float32_error_gap={case['float32_error_gap']:.2e}"
        )
    lines.append(
        f"best auto-vs-fixed speedup: "
        f"{report['best_speedup_auto_vs_fixed']:.2f}x"
    )
    return "\n".join(lines)


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a9_planner_small(benchmark) -> None:
    """Planner variants agree to tolerance at a quick scale."""

    def run() -> dict:
        return run_case("small", (96, 30, 40), (5, 5, 4), 5, repeats=2)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report["auto"]["rel_error"] < 0.5
    assert report["float32_error_gap"] < 1e-2
    assert report["auto"]["sketch_draws"] <= 1


def test_a9_report(benchmark) -> None:
    """Full-size comparison; writes BENCH_compress.json at the repo root."""

    def run() -> dict:
        return run_all()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A9_compress_planner", text)
    print(f"\n[A9] compression planner -> {path} and {JSON_PATH}\n{text}")
    for case in report["cases"]:
        assert case["float32_error_gap"] < 1e-2
    # Acceptance target of the planner layer.
    assert report["best_speedup_auto_vs_fixed"] >= 1.5, report


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: sketch draws per batch and float32 accuracy",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per variant"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_all(repeats=args.repeats)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report))
    print(f"wrote {JSON_PATH}")
    best = report["best_speedup_auto_vs_fixed"]
    if best < 1.5:
        print(
            f"[A9] WARNING: best auto-vs-fixed speedup {best:.2f}x below "
            "the 1.5x target on this machine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
