"""A12 — serving acceleration: range index, result cache, batched readers.

Three sections:

* **index** (informative): cost of building the dyadic range index — wall
  clock, node count and payload bytes, against the store's own size.

* **cached** (acceptance gate): a repeated/overlapping time-range workload
  answered by a default ``open()`` (persisted index + LRU result cache +
  warm starts) vs the same workload with every acceleration disabled
  (``use_index=False, cache_size=0, warm_start=False``).  The gate requires
  the cached pass to be at least 3x faster (2x in ``--smoke``) and every
  answer bit-identical to its uncached counterpart.

* **concurrent** (acceptance gate): the bench_a11 regression workload — a
  serial pass then the same queries across 4 reader threads on one mapped
  ``ServedModel``.  The gate requires concurrent wall clock to beat serial
  (speedup > 1.0) with bit-identical answers; the result cache makes this
  hold even on a single core, and BLAS-thread partitioning keeps readers
  from oversubscribing on larger machines.

The machine-readable report lands at ``BENCH_serving.json`` in the repo
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_a12_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_a12_serving.py --smoke   # CI

``--smoke`` runs a small tensor with the same gates and exits non-zero on
any speedup or fidelity regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_serving.json"

SEED = 0

#: Full-scale workload (smoke shrinks everything).
SHAPE = (90, 70, 240)
RANKS = (8, 8, 8)
NOISE = 0.05
QUERY_SPAN = 48
N_READERS = 4
QUERIES_PER_READER = 6
#: Each distinct range is asked this many times in the cached-workload
#: section — the shape of a dashboard refreshing overlapping windows.
REPEATS = 4


def _data(shape: tuple[int, ...]) -> np.ndarray:
    from repro.tensor.random import random_tensor

    ranks = tuple(min(r, d) for r, d in zip(RANKS, shape))
    return random_tensor(shape, ranks, rng=np.random.default_rng(SEED), noise=NOISE)


def _workload(steps: int) -> list[tuple[int, int]]:
    """Overlapping windows, each repeated REPEATS times, interleaved."""
    span = max(2, min(QUERY_SPAN, steps) // 2)
    stride = max(1, span // 2)
    distinct = []
    start = 0
    while start + span <= steps and len(distinct) < 6:
        distinct.append((start, start + span))
        start += stride
    return [r for _ in range(REPEATS) for r in distinct]


def _fit_store(x: np.ndarray, store_dir: Path) -> None:
    from repro.core.dtucker import DTucker

    ranks = tuple(min(r, d) for r, d in zip(RANKS, x.shape))
    DTucker(ranks=ranks, seed=SEED).fit(x).save(store_dir, overwrite=True)


def run_index_section(store_dir: Path) -> dict:
    """Build and persist the dyadic range index; report cost and size."""
    from repro.store import ModelStore

    store = ModelStore(store_dir)
    t0 = time.perf_counter()
    index = store.build_index()
    build_seconds = time.perf_counter() - t0
    return {
        "build_seconds": build_seconds,
        "n_nodes": index.n_nodes,
        "min_span": index.min_span,
        "index_nbytes": index.nbytes,
        "store_nbytes": store.nbytes,
        "overhead_ratio": index.nbytes / max(store.nbytes, 1),
    }


def run_cached_section(store_dir: Path, steps: int) -> dict:
    """Repeated/overlapping workload: accelerated open vs everything off.

    The gated comparison runs with ``warm_start=False`` so every answer is
    bit-identical to its uncached counterpart (index + exact-hit cache never
    change the arithmetic).  A third, informative pass re-enables warm
    starts — those answers converge from a cached overlapping-range
    initialisation, so they are within solver tolerance but not bit-equal.
    """
    from repro.store import ModelStore

    jobs = _workload(steps)
    store = ModelStore(store_dir)

    with store.open(use_index=False, cache_size=0, warm_start=False) as served:
        served.query_time_range(*jobs[0])  # warm the reader engine
        t0 = time.perf_counter()
        uncached = [served.query_time_range(a, b) for a, b in jobs]
        uncached_seconds = time.perf_counter() - t0

    with store.open(warm_start=False) as served:
        served.query_time_range(*jobs[0])
        served.clear_cache()
        t0 = time.perf_counter()
        cached = [served.query_time_range(a, b) for a, b in jobs]
        cached_seconds = time.perf_counter() - t0
        stats = served.stats

    bit_identical = all(
        np.array_equal(a.core, b.core)
        and all(np.array_equal(fa, fb) for fa, fb in zip(a.factors, b.factors))
        for a, b in zip(uncached, cached)
    )

    with store.open() as served:
        served.query_time_range(*jobs[0])
        served.clear_cache()
        t0 = time.perf_counter()
        warm = [served.query_time_range(a, b) for a, b in jobs]
        warm_seconds = time.perf_counter() - t0
        warm_starts = served.stats.warm_starts
    warm_max_rel_dev = max(
        float(
            np.linalg.norm(a.reconstruct() - b.reconstruct())
            / max(np.linalg.norm(a.reconstruct()), 1e-30)
        )
        for a, b in zip(uncached, warm)
    )

    return {
        "n_queries": len(jobs),
        "n_distinct": len(set(jobs)),
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "speedup": uncached_seconds / cached_seconds,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "warm_seconds": warm_seconds,
        "warm_starts": warm_starts,
        "warm_max_rel_deviation": warm_max_rel_dev,
        "bit_identical": bool(bit_identical),
        "stats": stats.summary(),
    }


def run_concurrent_section(store_dir: Path, steps: int) -> dict:
    """Serial pass then 4 readers on one mapped model (bit-identity checked)."""
    from repro.store import ModelStore

    span = max(2, min(QUERY_SPAN, steps) // 2)
    jobs = [
        ((i * 3) % (steps - span), (i * 3) % (steps - span) + span)
        for i in range(N_READERS * QUERIES_PER_READER)
    ]
    with ModelStore(store_dir).open() as served:
        t0 = time.perf_counter()
        serial = [served.query_time_range(a, b) for a, b in jobs]
        serial_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_READERS) as pool:
            concurrent = list(
                pool.map(lambda j: served.query_time_range(*j), jobs)
            )
        concurrent_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        batched = served.query_many(jobs, max_workers=N_READERS)
        batched_seconds = time.perf_counter() - t0
        threads = {r.thread for r in served.stats.records}
        summary = served.stats.summary()

    def _same(a, b) -> bool:
        return np.array_equal(a.core, b.core) and all(
            np.array_equal(fa, fb) for fa, fb in zip(a.factors, b.factors)
        )

    bit_identical = all(
        _same(a, b) for a, b in zip(serial, concurrent)
    ) and all(_same(a, b) for a, b in zip(serial, batched))
    return {
        "n_queries": len(jobs),
        "n_readers": N_READERS,
        "serial_seconds": serial_seconds,
        "concurrent_seconds": concurrent_seconds,
        "batched_seconds": batched_seconds,
        "speedup": serial_seconds / concurrent_seconds,
        "threads_used": len(threads),
        "bit_identical": bool(bit_identical),
        "stats": summary,
    }


def run_all(shape: tuple[int, ...] = SHAPE) -> dict:
    x = _data(shape)
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        _fit_store(x, store_dir)
        index = run_index_section(store_dir)
        cached = run_cached_section(store_dir, x.shape[-1])
        concurrent = run_concurrent_section(store_dir, x.shape[-1])
    return {
        "benchmark": "A12_serving",
        "seed": SEED,
        "shape": list(x.shape),
        "index": index,
        "cached": cached,
        "concurrent": concurrent,
    }


def _check(report: dict, *, min_cached_speedup: float = 3.0) -> int:
    ca, cc = report["cached"], report["concurrent"]
    if not ca["bit_identical"]:
        print(
            "[A12] FAIL: cached answers differ from uncached", file=sys.stderr
        )
        return 1
    if ca["speedup"] < min_cached_speedup:
        print(
            f"[A12] FAIL: cached workload speedup {ca['speedup']:.2f}x "
            f"below the {min_cached_speedup:.1f}x gate "
            f"({ca['cached_seconds'] * 1e3:.1f} ms vs "
            f"{ca['uncached_seconds'] * 1e3:.1f} ms)",
            file=sys.stderr,
        )
        return 1
    if not cc["bit_identical"]:
        print(
            "[A12] FAIL: concurrent/batched answers differ from serial",
            file=sys.stderr,
        )
        return 1
    if cc["speedup"] <= 1.0:
        print(
            f"[A12] FAIL: concurrent speedup {cc['speedup']:.2f}x <= 1.0 "
            f"({cc['concurrent_seconds'] * 1e3:.1f} ms concurrent vs "
            f"{cc['serial_seconds'] * 1e3:.1f} ms serial)",
            file=sys.stderr,
        )
        return 1
    return 0


def _format(report: dict) -> str:
    ix, ca, cc = report["index"], report["cached"], report["concurrent"]
    return "\n".join(
        [
            f"index: {ix['n_nodes']} nodes (min_span {ix['min_span']}) "
            f"built in {ix['build_seconds'] * 1e3:.1f} ms",
            f"  {ix['index_nbytes']} bytes "
            f"({ix['overhead_ratio']:.2f}x the store's {ix['store_nbytes']})",
            f"cached: {ca['n_queries']} queries over {ca['n_distinct']} "
            f"distinct ranges",
            f"  uncached={ca['uncached_seconds'] * 1e3:8.1f} ms  "
            f"cached={ca['cached_seconds'] * 1e3:8.1f} ms  "
            f"speedup={ca['speedup']:.2f}x",
            f"  cache: {ca['cache_hits']} hits / {ca['cache_misses']} misses  "
            f"bit_identical={ca['bit_identical']}",
            f"  warm-start pass: {ca['warm_seconds'] * 1e3:8.1f} ms  "
            f"{ca['warm_starts']} warm starts  "
            f"max_rel_dev={ca['warm_max_rel_deviation']:.2e}",
            f"concurrent: {cc['n_queries']} queries, {cc['n_readers']} readers "
            f"({cc['threads_used']} threads used)",
            f"  serial={cc['serial_seconds'] * 1e3:8.1f} ms  "
            f"concurrent={cc['concurrent_seconds'] * 1e3:8.1f} ms  "
            f"batched={cc['batched_seconds'] * 1e3:8.1f} ms  "
            f"speedup={cc['speedup']:.2f}x  bit_identical={cc['bit_identical']}",
        ]
    )


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a12_serving_small(benchmark) -> None:
    """Quick-scale gates: cached speedup + concurrent > serial + fidelity."""

    def run() -> dict:
        return run_all(shape=(40, 30, 80))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _check(report, min_cached_speedup=2.0) == 0, report


def test_a12_report(benchmark) -> None:
    """Full comparison; writes BENCH_serving.json at the repo root."""

    def run() -> dict:
        return run_all()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A12_serving", text)
    print(f"\n[A12] serving acceleration -> {path} and {JSON_PATH}\n{text}")
    assert _check(report) == 0


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: small tensor, same gates at a 2x cached bar",
    )
    args = parser.parse_args(argv)
    shape = (40, 30, 80) if args.smoke else SHAPE
    report = run_all(shape=shape)
    text = _format(report)
    if args.smoke:
        print(f"[A12 smoke]\n{text}")
        rc = _check(report, min_cached_speedup=2.0)
        if rc == 0:
            print(
                "[A12 smoke] OK: cached >= 2x, concurrent > serial, "
                "answers bit-identical"
            )
        return rc
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(text)
    print(f"wrote {JSON_PATH}")
    return _check(report)


if __name__ == "__main__":
    raise SystemExit(main())
