"""F3 — reconstruction-error comparison across datasets and methods.

Regenerates the paper's accuracy figure: relative reconstruction error
``||X - X̂||²/||X||²`` per method per dataset.  Paper shape to reproduce:
D-Tucker matches HOOI (the accuracy gold standard) within a small factor on
every dataset, while MACH degrades and the sketched methods sit slightly
above the floor.
"""

from __future__ import annotations

import pytest
from _util import (
    PAPER_DATASETS,
    bench_scale,
    cached_dataset,
    method_kwargs,
    methods_for,
    write_result,
)

from repro.experiments.harness import ExperimentRecord, run_method
from repro.experiments.report import format_table

RECORDS: list[ExperimentRecord] = []


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_f3_error(benchmark, dataset: str) -> None:
    data = cached_dataset(dataset)

    def measure() -> list[ExperimentRecord]:
        return [
            run_method(
                m, data.tensor, data.ranks, dataset=dataset, seed=0,
                **method_kwargs(m),
            )
            for m in methods_for(data.ranks)
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    RECORDS.extend(rows)
    errors = {r.method: r.error for r in rows}
    # Comparable accuracy: within 1.5x of HOOI plus an absolute floor.
    assert errors["dtucker"] <= errors["tucker_als"] * 1.5 + 5e-3, (
        dataset,
        errors,
    )


def test_f3_report(benchmark) -> None:
    def build() -> str:
        rows = [[r.dataset, r.method, f"{r.error:.6f}"] for r in RECORDS]
        return f"scale={bench_scale()}\n" + format_table(
            ["dataset", "method", "error"], rows
        )

    text = benchmark(build)
    path = write_result("F3_error", text)
    print(f"\n[F3] reconstruction error -> {path}\n{text}")
