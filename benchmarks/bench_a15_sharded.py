"""A15 — distributed sharded fitting: shard-local compression, reduce-only bytes.

One workload, two acceptance gates:

* **bytes** — compressing a directory of ``.npy`` shards on the process
  backend must ship only the stacked ``[U_lΣ_l]``/``[Σ_lV_lᵀ]`` factor
  products across shard boundaries: the ``comm:`` counters must total
  **< 5 %** of the raw-slab bytes (the closed-form invariant is
  ``(I1+I2+1)·K`` numbers per slice against ``I1·I2``).
* **speedup** — on a *skewed, latency-bound* shard layout (member reads
  stall proportionally to their slice counts, the way remote or cold
  storage does; one shard holds most of the extent), the two-worker
  coordinator must finish the compression **>= 1.3x** faster than the
  single-process run.  The stalls release the GIL/CPU, so the measured
  win is core-count independent and reproducible in single-CPU CI
  containers.

Both worker counts must return bit-identical compressed triples — and
they match the unsharded in-memory compression bit for bit too, because
shards share one sketch and the per-slice kernels are slice-local.

The full run adds an informative distributed-sweeps section reporting the
reduce rounds and per-sweep comm volume of
:func:`repro.distributed.distributed_als_sweeps`.

The machine-readable report lands at ``BENCH_shard.json`` in the repo
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_a15_sharded.py           # full
    PYTHONPATH=src python benchmarks/bench_a15_sharded.py --smoke   # CI

``--smoke`` runs the gated workload only (two repeats) and exits non-zero
when either gate or the bit-identity contract regresses.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_shard.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import DenseSource, DTuckerConfig, NpySource, compress_source  # noqa: E402
from repro.core.initialization import initialize  # noqa: E402
from repro.distributed import ShardedSource, distributed_als_sweeps  # noqa: E402
from repro.engine import ProcessBackend, backend_scope  # noqa: E402
from repro.kernels import KernelStats, factor_nbytes  # noqa: E402
from repro.tensor.random import random_tensor  # noqa: E402

SEED = 0

#: Slab geometry: wide slices so the factor-product payload sits far
#: below the raw-slab bytes ((I1+I2+1)·K / (I1·I2) ≈ 3.1 % here).
I1, I2, T = 256, 256, 48
RANK = 4
RANKS = (4, 4, 4)

#: Skewed shard layout: one member owns most of the temporal extent — the
#: adversarial case for an equal-count split, and the common one when one
#: site accumulated most of the history.  Cost-balanced LPT over the
#: per-member tasks is what earns the two-worker win.
SHARD_EXTENTS = (28, 8, 6, 6)

#: Per-slice read stall (seconds): emulates remote/cold-storage latency.
#: Total stall ≈ 0.38 s sequential, ≈ 0.22 s on two workers (LPT bound).
SLEEP_PER_SLICE = 0.008


@dataclass(frozen=True)
class SlowNpyDescriptor:
    """Descriptor of a :class:`SlowNpySource` (path + injected latency)."""

    path: str
    sleep_per_slice: float

    def open(self) -> "SlowNpySource":
        return SlowNpySource(self.path, self.sleep_per_slice)


class SlowNpySource(NpySource):
    """An ``.npy`` member whose reads stall like cold/remote storage.

    ``time.sleep`` releases the GIL and burns no CPU, so the benchmark's
    parallel win measures scheduling quality, not core count.
    """

    def __init__(self, path, sleep_per_slice: float = SLEEP_PER_SLICE) -> None:
        super().__init__(path)
        self._sleep = float(sleep_per_slice)

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        time.sleep(self._sleep * (int(stop) - int(start)))
        return super().read_batch(start, stop)

    def descriptor(self) -> SlowNpyDescriptor:
        return SlowNpyDescriptor(self.path, self._sleep)


def _make_workload(directory: Path) -> tuple[np.ndarray, ShardedSource]:
    """Write the skewed shard directory and open it with injected latency."""
    rng = np.random.default_rng(SEED)
    tensor = random_tensor((I1, I2, T), RANKS, rng=rng, noise=0.05)
    members = []
    lo = 0
    for i, extent in enumerate(SHARD_EXTENTS):
        path = directory / f"shard{i:03d}.npy"
        np.save(path, np.ascontiguousarray(tensor[..., lo:lo + extent]))
        members.append(SlowNpySource(path))
        lo += extent
    assert lo == T
    return tensor, ShardedSource(members)


def _timed_compress(
    source: ShardedSource, n_workers: int, *, repeats: int
) -> tuple[float, object, KernelStats]:
    """Best-of-``repeats`` wall clock of one sharded compression."""
    cfg = DTuckerConfig(seed=SEED, backend="process", n_workers=n_workers)
    stats = KernelStats()
    with ProcessBackend(n_workers=n_workers) as engine:
        # Warm the pool (fork + import cost must not pollute the timing).
        ssvd = compress_source(source, RANK, config=cfg, engine=engine, stats=stats)
        best = float("inf")
        for _ in range(max(1, int(repeats))):
            t0 = time.perf_counter()
            ssvd = compress_source(source, RANK, config=cfg, engine=engine)
            best = min(best, time.perf_counter() - t0)
    return best, ssvd, stats


def run_engine_section(*, repeats: int = 3) -> dict:
    """The gated workload: skewed shards, 1 vs 2 workers, byte accounting."""
    with tempfile.TemporaryDirectory(prefix="bench_a15_") as tmp:
        tensor, source = _make_workload(Path(tmp))
        count = source.slice_count
        raw_bytes = count * I1 * I2 * np.dtype(np.float64).itemsize
        ship_bytes = factor_nbytes(I1, I2, RANK, n_slices=count)

        single_s, ssvd_1, stats = _timed_compress(source, 1, repeats=repeats)
        double_s, ssvd_2, _ = _timed_compress(source, 2, repeats=repeats)

        # Unsharded in-memory reference: the bit-identity contract.
        ref = compress_source(
            DenseSource(tensor),
            RANK,
            config=DTuckerConfig(seed=SEED, backend="serial"),
        )
        bit_identical = bool(
            np.array_equal(ssvd_1.u, ssvd_2.u)
            and np.array_equal(ssvd_1.s, ssvd_2.s)
            and np.array_equal(ssvd_1.vt, ssvd_2.vt)
            and np.array_equal(ssvd_1.u, ref.u)
            and np.array_equal(ssvd_1.s, ref.s)
            and np.array_equal(ssvd_1.vt, ref.vt)
        )
    return {
        "shape": [I1, I2, T],
        "rank": RANK,
        "shard_extents": list(SHARD_EXTENTS),
        "sleep_per_slice": SLEEP_PER_SLICE,
        "single_seconds": single_s,
        "two_worker_seconds": double_s,
        "speedup": single_s / double_s,
        "raw_slab_bytes": int(raw_bytes),
        "factor_ship_bytes": int(ship_bytes),
        "measured_comm_bytes": int(stats.bytes_comm),
        "ship_tasks": stats.misses_for("comm:ship"),
        "bytes_ratio": stats.bytes_comm / raw_bytes,
        "bit_identical": bit_identical,
    }


def run_sweeps_section() -> dict:
    """Informative: reduce rounds and comm volume of distributed sweeps."""
    rng = np.random.default_rng(SEED)
    tensor = random_tensor((I1, I2, T), RANKS, rng=rng, noise=0.05)
    cfg = DTuckerConfig(seed=SEED, backend="serial")
    source = ShardedSource.partition(DenseSource(tensor), len(SHARD_EXTENTS))
    ssvd = compress_source(source, RANK, config=cfg)
    _, factors = initialize(ssvd, RANKS)
    with backend_scope("serial", config=cfg) as engine:
        t0 = time.perf_counter()
        outcome = distributed_als_sweeps(
            ssvd,
            RANKS,
            factors,
            shard_bounds=source.shard_bounds,
            config=cfg,
            engine=engine,
        )
        seconds = time.perf_counter() - t0
        trace = engine.traces[-1]
    order = len(ssvd.shape)
    return {
        "n_shards": len(SHARD_EXTENTS),
        "sweeps": outcome.n_iters,
        "converged": outcome.converged,
        "seconds": seconds,
        "reduce_rounds": trace.reduce_rounds,
        "rounds_per_sweep": order + 1,
        "comm_bytes": int(trace.comm_bytes),
        "comm_bytes_per_sweep": int(trace.comm_bytes / max(1, outcome.n_iters)),
    }


def run_all(*, repeats: int = 3) -> dict:
    return {
        "benchmark": "A15_sharded",
        "seed": SEED,
        "backend": "process",
        "engine": run_engine_section(repeats=repeats),
        "sweeps": run_sweeps_section(),
    }


def _check(report_engine: dict) -> int:
    """Shared acceptance gate: reduce-only bytes, two-worker win, identity."""
    if not report_engine["bit_identical"]:
        print(
            "[A15] FAIL: sharded compression differs across worker counts "
            "or from the unsharded reference — bit-identity broken",
            file=sys.stderr,
        )
        return 1
    ratio = report_engine["bytes_ratio"]
    if ratio >= 0.05:
        print(
            f"[A15] FAIL: shard-boundary traffic is {ratio:.1%} of the raw "
            "slab bytes (gate: < 5%) — a slab is crossing the boundary",
            file=sys.stderr,
        )
        return 1
    speedup = report_engine["speedup"]
    if speedup < 1.3:
        print(
            f"[A15] FAIL: two-worker speedup {speedup:.2f}x below the 1.3x "
            "target on the skewed shard layout",
            file=sys.stderr,
        )
        return 1
    return 0


def smoke() -> int:
    """Fast CI guard: the gated workload only."""
    if "fork" not in multiprocessing.get_all_start_methods():
        # The latency-injecting member classes live in this script; only
        # fork workers inherit them.  POSIX CI always has fork.
        print("[A15 smoke] SKIP: no fork start method on this platform")
        return 0
    report = run_engine_section(repeats=2)
    print(
        f"[A15 smoke] single={report['single_seconds'] * 1e3:.1f}ms "
        f"two-worker={report['two_worker_seconds'] * 1e3:.1f}ms "
        f"speedup={report['speedup']:.2f}x "
        f"bytes={report['measured_comm_bytes']}/{report['raw_slab_bytes']} "
        f"({report['bytes_ratio']:.2%}) "
        f"bit_identical={report['bit_identical']}"
    )
    rc = _check(report)
    if rc == 0:
        print(
            "[A15 smoke] OK: < 5% of raw bytes shipped, >= 1.3x on two workers"
        )
    return rc


def _format(report: dict) -> str:
    eng = report["engine"]
    sw = report["sweeps"]
    return "\n".join(
        [
            f"engine: {tuple(eng['shape'])} rank={eng['rank']} shards="
            f"{tuple(eng['shard_extents'])} stall={eng['sleep_per_slice']}s/slice",
            f"  single        {eng['single_seconds'] * 1e3:8.1f} ms",
            f"  two-worker    {eng['two_worker_seconds'] * 1e3:8.1f} ms  "
            f"speedup={eng['speedup']:.2f}x",
            f"  comm {eng['measured_comm_bytes']} B of {eng['raw_slab_bytes']} B "
            f"raw ({eng['bytes_ratio']:.2%}); factor payload "
            f"{eng['factor_ship_bytes']} B over {eng['ship_tasks']} ships; "
            f"bit_identical={eng['bit_identical']}",
            f"sweeps: {sw['n_shards']} shards, {sw['sweeps']} sweeps "
            f"(converged={sw['converged']}) in {sw['seconds'] * 1e3:.1f} ms",
            f"  {sw['reduce_rounds']} reduce rounds "
            f"({sw['rounds_per_sweep']}/sweep), {sw['comm_bytes']} B total "
            f"({sw['comm_bytes_per_sweep']} B/sweep)",
        ]
    )


# -- pytest entry points (collected via `pytest benchmarks/`) ----------------

def test_a15_engine_small(benchmark) -> None:
    """Quick-scale gated workload: bytes, speedup and bit-identity."""
    if "fork" not in multiprocessing.get_all_start_methods():
        import pytest

        pytest.skip("latency-injecting members need fork workers")

    def run() -> dict:
        return run_engine_section(repeats=2)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report["bit_identical"]
    assert report["bytes_ratio"] < 0.05, report
    assert report["speedup"] >= 1.3, report


def test_a15_report(benchmark) -> None:
    """Full comparison; writes BENCH_shard.json at the repo root."""
    if "fork" not in multiprocessing.get_all_start_methods():
        import pytest

        pytest.skip("latency-injecting members need fork workers")

    def run() -> dict:
        return run_all()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    text = _format(report)
    from _util import write_result

    path = write_result("A15_sharded", text)
    print(f"\n[A15] sharded -> {path} and {JSON_PATH}\n{text}")
    assert _check(report["engine"]) == 0


# -- standalone CLI ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: gated workload only (< 5% bytes, >= 1.3x)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per variant"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report = run_all(repeats=args.repeats)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_format(report))
    print(f"wrote {JSON_PATH}")
    return _check(report["engine"])


if __name__ == "__main__":
    raise SystemExit(main())
