"""F2 — storage cost of each method's working representation.

Regenerates the paper's memory figure: bytes every method must keep to
answer a decomposition request (raw tensor for from-scratch methods, slice
SVDs for D-Tucker, element samples for MACH, sketches for Tucker-ts/ttmts).
Paper shape to reproduce: D-Tucker needs the least storage everywhere, with
the largest ratios on tensors whose slice count or slice area is large.
"""

from __future__ import annotations

import pytest
from _util import (
    PAPER_DATASETS,
    bench_scale,
    cached_dataset,
    method_kwargs,
    methods_for,
    write_result,
)

from repro.experiments.harness import ExperimentRecord, run_method
from repro.experiments.report import format_table, storage_ratio_over

RECORDS: list[ExperimentRecord] = []


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_f2_memory(benchmark, dataset: str) -> None:
    data = cached_dataset(dataset)

    def measure() -> list[ExperimentRecord]:
        rows = []
        for method in methods_for(data.ranks):
            rows.append(
                run_method(
                    method,
                    data.tensor,
                    data.ranks,
                    dataset=dataset,
                    seed=0,
                    compute_error=False,
                    **method_kwargs(method),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    RECORDS.extend(rows)
    by_method = {r.method: r.stored_nbytes for r in rows}
    # Paper shape: D-Tucker stores (far) less than every method that keeps
    # the tensor or a sample of it.  The Tucker-ts sketches are excluded
    # from the assertion: they are *rank-specific and single-purpose*
    # (answering a different-rank request needs a fresh pass over the
    # tensor), so they are not comparable storage — on long-thin tensors
    # like stock they can be smaller, and the report shows it honestly.
    dense_like = [
        v
        for m, v in by_method.items()
        if m not in ("dtucker", "tucker_ts", "tucker_ttmts")
    ]
    assert all(by_method["dtucker"] < v for v in dense_like), (dataset, by_method)


def test_f2_report(benchmark) -> None:
    def build() -> str:
        rows = [
            [r.dataset, r.method, r.stored_nbytes, r.result_nbytes]
            for r in RECORDS
        ]
        table = format_table(
            ["dataset", "method", "stored_bytes", "result_bytes"], rows
        )
        lines = [f"scale={bench_scale()}", table, "", "storage ratio vs dtucker:"]
        for dataset, ratios in storage_ratio_over(RECORDS).items():
            pretty = ", ".join(f"{m}={v:.1f}x" for m, v in sorted(ratios.items()))
            lines.append(f"  {dataset}: {pretty}")
        return "\n".join(lines)

    text = benchmark(build)
    path = write_result("F2_memory", text)
    print(f"\n[F2] storage comparison -> {path}\n{text}")
