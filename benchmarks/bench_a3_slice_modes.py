"""A3 — ablation: choice of the slice plane (DESIGN.md §5.3).

D-Tucker fixes modes (1, 2) as the slice plane; nothing in the algorithm
requires that.  The slice plane determines the storage footprint
``(I_i + I_j + 1)·K·L`` with ``L = ΠI/(I_i·I_j)`` — minimised by slicing
over the two *largest* modes — and can affect time and error through the
slice spectra.  This benchmark fits the same tensor with every slice plane
plus the ``slice_modes="largest"`` heuristic.  Expected shape: error is
plane-insensitive, and "largest" lands on the minimum-storage plane
automatically.
"""

from __future__ import annotations

import pytest
from _util import bench_scale, cached_dataset, write_result

from repro.core.dtucker import DTucker
from repro.experiments.report import format_table

ROWS: list[list[object]] = []

DATASET = "boats"
VARIANTS: tuple[tuple[str, object], ...] = (
    ("plane(0,1)", (0, 1)),
    ("plane(0,2)", (0, 2)),
    ("plane(1,2)", (1, 2)),
    ("largest", "largest"),
)


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v[0])
def test_a3_slice_modes(benchmark, variant) -> None:
    label, slice_modes = variant
    data = cached_dataset(DATASET)

    def run() -> DTucker:
        return DTucker(data.ranks, slice_modes=slice_modes, seed=0).fit(
            data.tensor
        )

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    ROWS.append(
        [
            label,
            str(model.permutation_),
            f"{model.timings_.total:.4f}",
            model.slice_svd_.nbytes,
            f"{model.result_.error(data.tensor):.6f}",
        ]
    )


def test_a3_report(benchmark) -> None:
    def build() -> str:
        table = format_table(
            ["variant", "permutation", "time_s", "stored_bytes", "error"], ROWS
        )
        return f"scale={bench_scale()}, dataset={DATASET}\n{table}"

    text = benchmark(build)
    by_label = {r[0]: r for r in ROWS}
    plane_bytes = [int(by_label[f"plane({i},{j})"][3]) for i, j in ((0, 1), (0, 2), (1, 2))]
    # The heuristic must land on the minimum-storage plane...
    assert int(by_label["largest"][3]) == min(plane_bytes)
    # ...and the reconstruction error must be plane-insensitive.
    errs = [float(r[4]) for r in ROWS]
    assert max(errs) <= min(errs) * 1.5 + 1e-4
    path = write_result("A3_slice_modes", text)
    print(f"\n[A3] slice-plane ablation -> {path}\n{text}")
