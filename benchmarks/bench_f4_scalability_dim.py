"""F4 — scalability with dimensionality ``I`` on synthetic cubes.

Regenerates the paper's synthetic-data scalability figure along the
dimensionality axis: wall-clock time of each method on ``I×I×I`` tensors of
known Tucker rank, for growing ``I``.  Paper shape to reproduce: every
method grows polynomially in ``I``, with D-Tucker's curve below HOOI's and
the gap widening with ``I``.
"""

from __future__ import annotations

import pytest
from _util import bench_scale, method_kwargs, write_result

from repro.datasets.synthetic import scalability_tensor
from repro.experiments.harness import ExperimentRecord, run_method
from repro.experiments.report import format_series

METHODS = ("dtucker", "tucker_als", "rtd", "tucker_ts")
RANK = 5

DIMS_BY_SCALE = {
    "tiny": (20, 30),
    "small": (30, 50, 70),
    "default": (50, 100, 150, 200),
    "large": (100, 200, 300),
}

RECORDS: dict[tuple[str, int], ExperimentRecord] = {}


def dims() -> tuple[int, ...]:
    return DIMS_BY_SCALE[bench_scale()]


@pytest.mark.parametrize("dim", dims())
@pytest.mark.parametrize("method", METHODS)
def test_f4_scalability_dim(benchmark, method: str, dim: int) -> None:
    x = scalability_tensor(dim, 3, RANK, noise=0.1, seed=0)

    def run() -> ExperimentRecord:
        return run_method(
            method, x, RANK, dataset=f"cube{dim}", seed=0, compute_error=False,
            **method_kwargs(method),
        )

    RECORDS[(method, dim)] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_f4_report(benchmark) -> None:
    def build() -> str:
        series = {
            m: [RECORDS[(m, d)].total_seconds for d in dims()] for m in METHODS
        }
        return f"scale={bench_scale()}, rank={RANK}\n" + format_series(
            "I", list(dims()), series
        )

    text = benchmark(build)
    # Shape check: every method's time grows with I.  Sub-50ms runs are too
    # jittery to compare on a shared single-core box, so the check only
    # bites for methods whose largest-I run is comfortably measurable (at
    # the default/large scales that is all of them).
    for m in METHODS:
        times = [RECORDS[(m, d)].total_seconds for d in dims()]
        if max(times) >= 0.05:
            assert times[-1] > times[0] * 0.8, (m, times)
    path = write_result("F4_scalability_dim", text)
    print(f"\n[F4] time vs dimensionality -> {path}\n{text}")
