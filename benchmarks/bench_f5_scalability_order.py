"""F5 — scalability with tensor order ``N`` on synthetic cubes.

Regenerates the paper's scalability figure along the order axis: time per
method on order-``N`` cubes whose total element count is held roughly
constant, so the axis isolates order effects (slice count ``L = I^{N-2}``
grows, slice area shrinks).  Paper shape to reproduce: D-Tucker stays ahead
of HOOI at every order.
"""

from __future__ import annotations

import pytest
from _util import bench_scale, write_result

from repro.datasets.synthetic import scalability_tensor
from repro.experiments.harness import ExperimentRecord, run_method
from repro.experiments.report import format_series

METHODS = ("dtucker", "tucker_als", "rtd")
RANK = 3

#: (order, dimensionality) pairs keeping Π I ≈ constant per scale.
GEOMETRY_BY_SCALE = {
    "tiny": ((3, 20), (4, 8)),
    "small": ((3, 60), (4, 22), (5, 12)),
    "default": ((3, 120), (4, 36), (5, 17)),
    "large": ((3, 200), (4, 53), (5, 22)),
}

RECORDS: dict[tuple[str, int], ExperimentRecord] = {}


def geometries() -> tuple[tuple[int, int], ...]:
    return GEOMETRY_BY_SCALE[bench_scale()]


@pytest.mark.parametrize("geometry", geometries(), ids=lambda g: f"N{g[0]}")
@pytest.mark.parametrize("method", METHODS)
def test_f5_scalability_order(benchmark, method: str, geometry: tuple[int, int]) -> None:
    order, dim = geometry
    x = scalability_tensor(dim, order, RANK, noise=0.1, seed=0)

    def run() -> ExperimentRecord:
        return run_method(
            method, x, RANK, dataset=f"order{order}", seed=0, compute_error=False
        )

    RECORDS[(method, order)] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_f5_report(benchmark) -> None:
    orders = [n for n, _ in geometries()]

    def build() -> str:
        series = {
            m: [RECORDS[(m, n)].total_seconds for n in orders] for m in METHODS
        }
        return f"scale={bench_scale()}, rank={RANK}\n" + format_series(
            "N", orders, series
        )

    text = benchmark(build)
    path = write_result("F5_scalability_order", text)
    print(f"\n[F5] time vs order -> {path}\n{text}")
