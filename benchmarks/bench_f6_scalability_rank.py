"""F6 — scalability with target rank ``J`` on synthetic cubes.

Regenerates the paper's scalability figure along the rank axis: time per
method at growing Tucker rank on a fixed cube.  Paper shape to reproduce:
all methods grow with ``J``; D-Tucker's growth is dominated by the slice
compression rank ``K = J`` and stays below HOOI's full-tensor TTM cost.
"""

from __future__ import annotations

import pytest
from _util import bench_scale, write_result

from repro.datasets.synthetic import scalability_tensor
from repro.experiments.harness import ExperimentRecord, run_method
from repro.experiments.report import format_series

METHODS = ("dtucker", "tucker_als", "rtd")

DIM_BY_SCALE = {"tiny": 24, "small": 60, "default": 120, "large": 200}
RANKS_BY_SCALE = {
    "tiny": (2, 4),
    "small": (2, 5, 10, 15),
    "default": (2, 5, 10, 20, 30),
    "large": (5, 10, 20, 40),
}

RECORDS: dict[tuple[str, int], ExperimentRecord] = {}


def dim() -> int:
    return DIM_BY_SCALE[bench_scale()]


def ranks() -> tuple[int, ...]:
    return RANKS_BY_SCALE[bench_scale()]


@pytest.mark.parametrize("rank", ranks())
@pytest.mark.parametrize("method", METHODS)
def test_f6_scalability_rank(benchmark, method: str, rank: int) -> None:
    x = scalability_tensor(dim(), 3, rank, noise=0.1, seed=0)

    def run() -> ExperimentRecord:
        return run_method(
            method, x, rank, dataset=f"rank{rank}", seed=0, compute_error=False
        )

    RECORDS[(method, rank)] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_f6_report(benchmark) -> None:
    def build() -> str:
        series = {
            m: [RECORDS[(m, j)].total_seconds for j in ranks()] for m in METHODS
        }
        return f"scale={bench_scale()}, I={dim()}\n" + format_series(
            "J", list(ranks()), series
        )

    text = benchmark(build)
    path = write_result("F6_scalability_rank", text)
    print(f"\n[F6] time vs rank -> {path}\n{text}")
