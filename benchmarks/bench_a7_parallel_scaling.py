"""A7 — parallel scaling of the execution engine.

Runs D-Tucker end-to-end on a synthetic order-3 tensor with ``L >= 64``
slices under every backend and a sweep of worker counts, recording the
speedup over :class:`~repro.engine.serial.SerialBackend` plus the
per-phase attribution from the engine's :class:`~repro.engine.PhaseTrace`.
The acceptance target of the engine redesign is a >= 2x speedup with 4
workers on a 4+-core machine; on fewer cores the benchmark still verifies
bit-identical factors across backends (determinism is chunk- and
scheduling-invariant by construction) and records whatever speedup the
hardware allows.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from _util import write_result

from repro.core.config import DTuckerConfig
from repro.core.dtucker import DTucker
from repro.experiments.report import format_table
from repro.tensor.random import random_tensor

#: 96 slices of 220x200 — big enough that per-slice SVD work dominates
#: dispatch overhead, small enough for a laptop run.
SHAPE = (220, 200, 96)
RANKS = (10, 10, 10)
SEED = 0

_CPUS = os.cpu_count() or 1
_WORKER_SWEEP = tuple(w for w in (1, 2, 4) if w <= max(_CPUS, 1)) or (1,)

SETTINGS: tuple[tuple[str, str, int], ...] = (
    ("serial", "serial", 1),
    *(
        (f"{backend}-w{w}", backend, w)
        for backend in ("thread", "process")
        for w in _WORKER_SWEEP
    ),
)

ROWS: list[list[object]] = []
_BASELINE: dict[str, object] = {}


def _tensor() -> np.ndarray:
    return random_tensor(SHAPE, RANKS, rng=SEED, noise=0.01)


@pytest.mark.parametrize("setting", SETTINGS, ids=lambda s: s[0])
def test_a7_scaling(benchmark, setting: tuple[str, str, int]) -> None:
    label, backend, workers = setting
    x = _tensor()
    cfg = DTuckerConfig(seed=SEED, backend=backend, n_workers=workers)

    def run() -> DTucker:
        return DTucker(RANKS, config=cfg).fit(x)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    if backend == "serial":
        _BASELINE["seconds"] = model.timings_.total
        _BASELINE["core"] = model.result_.core
    else:
        # Parity: every backend must reproduce the serial factors exactly.
        np.testing.assert_array_equal(model.result_.core, _BASELINE["core"])
    phase_s = {t.phase: t.seconds for t in model.trace_}
    ROWS.append(
        [
            label,
            workers,
            f"{model.timings_.total:.4f}",
            f"{phase_s.get('approximation', 0.0):.4f}",
            f"{phase_s.get('iteration', 0.0):.4f}",
            f"{float(_BASELINE['seconds']) / model.timings_.total:.2f}x",  # type: ignore[arg-type]
        ]
    )


def test_a7_report(benchmark) -> None:
    def build() -> str:
        table = format_table(
            ["setting", "workers", "total_s", "approx_s", "iter_s", "speedup"],
            ROWS,
        )
        return f"shape={SHAPE}, ranks={RANKS}, cpus={_CPUS}\n{table}"

    text = benchmark(build)
    assert ROWS[0][0] == "serial"
    speedups = {str(r[0]): float(str(r[5]).rstrip("x")) for r in ROWS}
    # The >= 2x target only binds when the hardware has the cores for it.
    if _CPUS >= 4 and "thread-w4" in speedups:
        assert max(speedups.values()) >= 2.0, speedups
    path = write_result("A7_parallel_scaling", text)
    print(f"\n[A7] parallel scaling -> {path}\n{text}")
