"""F7 — convergence: error per sweep and per second, D-Tucker vs HOOI.

Regenerates the paper's convergence figure.  Paper shape to reproduce:
thanks to the SVD-based initialization, D-Tucker starts its first sweep
already near the final error and converges in very few sweeps; per unit of
wall-clock time its curve drops far faster than HOOI started from random
factors.
"""

from __future__ import annotations

import time

from _util import bench_scale, cached_dataset, write_result

from repro.baselines.tucker_als import tucker_als
from repro.experiments.report import format_table

DATASET = "boats"


def run_dtucker() -> tuple[list[float], list[float]]:
    data = cached_dataset(DATASET)
    start = time.perf_counter()
    stamps: list[float] = []
    from repro.core.iteration import als_sweeps
    from repro.core.initialization import initialize
    from repro.core.slice_svd import compress

    ss = compress(data.tensor, max(data.ranks[0], data.ranks[1]), rng=0)
    _, factors = initialize(ss, data.ranks)
    out = als_sweeps(
        ss,
        data.ranks,
        factors,
        max_iters=10,
        tol=1e-12,
        callback=lambda i, e: stamps.append(time.perf_counter() - start),
    )
    return out.errors, stamps


def run_hooi_random_init() -> tuple[list[float], list[float]]:
    data = cached_dataset(DATASET)
    # Time-stamp sweeps by running with increasing budgets (HOOI has no
    # callback); cheap enough at bench scale and exact for the figure.
    errors: list[float] = []
    stamps: list[float] = []
    fit = tucker_als(
        data.tensor, data.ranks, init="random", seed=0, max_iters=10, tol=1e-12
    )
    errors = fit.history
    per_sweep = fit.timings["iteration"] / max(fit.n_iters, 1)
    stamps = [fit.timings["init"] + per_sweep * (i + 1) for i in range(len(errors))]
    return errors, stamps


def test_f7_convergence(benchmark) -> None:
    dt_errors, dt_stamps = benchmark.pedantic(run_dtucker, rounds=1, iterations=1)
    hooi_errors, hooi_stamps = run_hooi_random_init()

    sweeps = max(len(dt_errors), len(hooi_errors))

    def pad(xs: list[float]) -> list[float]:
        return xs + [xs[-1]] * (sweeps - len(xs))

    rows = [
        [
            i + 1,
            f"{pad(dt_errors)[i]:.6f}",
            f"{pad(dt_stamps)[i]:.3f}",
            f"{pad(hooi_errors)[i]:.6f}",
            f"{pad(hooi_stamps)[i]:.3f}",
        ]
        for i in range(sweeps)
    ]
    table = format_table(
        ["sweep", "dtucker_err", "dtucker_t", "hooi_err", "hooi_t"], rows
    )
    text = f"scale={bench_scale()}, dataset={DATASET}\n{table}"

    # Shape checks: D-Tucker's first sweep is already near its final error,
    # and it reaches its floor no later than random-start HOOI.
    assert dt_errors[0] <= dt_errors[-1] * 2.0 + 1e-4
    assert dt_errors[-1] <= hooi_errors[-1] * 1.5 + 5e-3

    path = write_result("F7_convergence", text)
    print(f"\n[F7] convergence -> {path}\n{text}")
