"""A5 — the reuse scenario: many decomposition requests, one compression.

The compressed slice representation is rank-agnostic (any slice-mode ranks
up to ``K`` can be answered from it), so a workload of ``R`` requests at
different ranks costs D-Tucker *one* approximation phase plus ``R`` cheap
init+iteration runs, while from-scratch methods pay the full tensor pass
every time.  This regenerates the amortisation picture behind the paper's
preprocessing design (and behind its Zoom-Tucker follow-up).  Expected
shape: D-Tucker's marginal per-request cost is a small fraction of HOOI's,
and the crossover happens within a handful of requests.
"""

from __future__ import annotations

import time

from _util import bench_scale, cached_dataset, write_result

from repro.baselines.tucker_als import tucker_als
from repro.core.dtucker import DTucker
from repro.experiments.report import format_table

DATASET = "boats"
REQUEST_RANKS = ((10, 10, 10), (8, 8, 8), (5, 5, 5), (3, 3, 3), (10, 5, 5))


def run_dtucker() -> tuple[list[float], list[float]]:
    data = cached_dataset(DATASET)
    times, errors = [], []
    t0 = time.perf_counter()
    model = DTucker(ranks=REQUEST_RANKS[0], slice_rank=10, seed=0).fit(data.tensor)
    times.append(time.perf_counter() - t0)
    errors.append(model.result_.error(data.tensor))
    for ranks in REQUEST_RANKS[1:]:
        t0 = time.perf_counter()
        result = model.refit(ranks=ranks)
        times.append(time.perf_counter() - t0)
        errors.append(result.error(data.tensor))
    return times, errors


def run_hooi() -> tuple[list[float], list[float]]:
    data = cached_dataset(DATASET)
    times, errors = [], []
    for ranks in REQUEST_RANKS:
        t0 = time.perf_counter()
        fit = tucker_als(data.tensor, ranks)
        times.append(time.perf_counter() - t0)
        errors.append(fit.result.error(data.tensor))
    return times, errors


def test_a5_reuse(benchmark) -> None:
    dt_times, dt_errors = benchmark.pedantic(run_dtucker, rounds=1, iterations=1)
    hooi_times, hooi_errors = run_hooi()

    rows = []
    for i, ranks in enumerate(REQUEST_RANKS):
        rows.append(
            [
                i + 1,
                str(ranks),
                f"{dt_times[i]:.4f}",
                f"{hooi_times[i]:.4f}",
                f"{dt_errors[i]:.5f}",
                f"{hooi_errors[i]:.5f}",
            ]
        )
    rows.append(
        [
            "total",
            "",
            f"{sum(dt_times):.4f}",
            f"{sum(hooi_times):.4f}",
            "",
            "",
        ]
    )
    table = format_table(
        ["request", "ranks", "dtucker_s", "hooi_s", "dtucker_err", "hooi_err"],
        rows,
    )
    text = f"scale={bench_scale()}, dataset={DATASET}\n{table}"

    # Shape checks: every *follow-up* request is much cheaper than HOOI's,
    # total workload time favours D-Tucker, and errors stay comparable.
    for i in range(1, len(REQUEST_RANKS)):
        assert dt_times[i] < hooi_times[i], (i, dt_times, hooi_times)
    assert sum(dt_times) < sum(hooi_times)
    for d, h in zip(dt_errors, hooi_errors):
        assert d <= h * 1.5 + 5e-3

    path = write_result("A5_reuse", text)
    print(f"\n[A5] reuse amortisation -> {path}\n{text}")
