"""Streaming decomposition of a growing sensor tensor.

Air-quality-style deployments append a new block of measurements every few
days.  Refitting Tucker from scratch on the whole history gets slower every
time; :class:`repro.StreamingDTucker` instead compresses only the new block
and warm-starts a few ALS sweeps, keeping update cost flat while matching
batch accuracy.  This example streams twelve blocks and compares both
approaches (time per update, error after each update).

Run:
    python examples/streaming_sensor_monitoring.py
"""

from __future__ import annotations

import time

from repro import DTucker, StreamingDTucker
from repro.datasets import airquality_like


def main() -> None:
    n_stations, n_pollutants = 300, 6
    block_len, n_blocks = 16, 12
    full = airquality_like(
        n_stations, block_len * n_blocks, n_pollutants, seed=5
    ).transpose(0, 2, 1)  # (station, pollutant, time): temporal mode last
    print(
        f"stream: {n_blocks} blocks of {block_len} timesteps, "
        f"tensor grows to {full.shape}"
    )

    ranks = (8, 4, 6)
    stream = StreamingDTucker(ranks=ranks, sweeps_per_update=4, seed=0)

    print(f"\n{'block':>5s} {'stream_s':>9s} {'batch_s':>8s} "
          f"{'stream_err':>10s} {'batch_err':>9s}")
    for b in range(n_blocks):
        block = full[..., b * block_len : (b + 1) * block_len]
        seen = full[..., : (b + 1) * block_len]

        t0 = time.perf_counter()
        stream.partial_fit(block)
        stream_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        batch = DTucker(ranks=ranks, seed=0).fit(seen)
        batch_s = time.perf_counter() - t0

        stream_err = stream.result_.error(seen)
        batch_err = batch.result_.error(seen)
        print(
            f"{b:5d} {stream_s:9.4f} {batch_s:8.4f} "
            f"{stream_err:10.5f} {batch_err:9.5f}"
        )

    total = stream.timings_.total
    print(f"\ntotal streaming compute: {total:.3f}s "
          f"({stream.timings_.summary()})")
    print(
        "note: streaming compresses each block exactly once; the batch "
        "column re-reads the full history every update."
    )


if __name__ == "__main__":
    main()
