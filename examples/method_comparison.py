"""Compare every Tucker solver in the library on one dataset.

A miniature version of the paper's evaluation: run D-Tucker and all six
baselines on a chosen dataset and print time, error, and stored bytes —
the trade-off picture of the runtime/memory/error figures.

Run:
    python examples/method_comparison.py [dataset] [scale]

``dataset`` defaults to ``boats``; ``scale`` to ``small``
(tiny | small | default | large).
"""

from __future__ import annotations

import sys

from repro.datasets import list_datasets, load_dataset
from repro.experiments import (
    METHOD_NAMES,
    format_records,
    run_method,
    speedup_over,
    storage_ratio_over,
)


def main(dataset: str = "boats", scale: str = "small") -> None:
    if dataset not in list_datasets():
        raise SystemExit(
            f"unknown dataset {dataset!r}; choose from {', '.join(list_datasets())}"
        )
    data = load_dataset(dataset, scale, seed=0)
    print(
        f"dataset={dataset} ({data.description})\n"
        f"shape={data.shape}, ranks={data.ranks}\n"
    )

    records = [
        run_method(m, data.tensor, data.ranks, dataset=dataset, seed=0)
        for m in METHOD_NAMES
    ]
    print(format_records(records))

    print("\nD-Tucker speedup over competitors:")
    for method, ratio in sorted(speedup_over(records)[dataset].items()):
        print(f"  {method:14s} {ratio:6.2f}x")

    print("\nD-Tucker storage advantage:")
    for method, ratio in sorted(storage_ratio_over(records)[dataset].items()):
        print(f"  {method:14s} {ratio:6.1f}x more bytes stored")


if __name__ == "__main__":
    main(*sys.argv[1:3])
