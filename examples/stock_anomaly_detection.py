"""Stock-market analysis: anomalous periods and related stocks via D-Tucker.

Mirrors the discovery use-case the paper family demonstrates on Korean
stock data: decompose a (stock, feature, day) tensor, then

1. score every day by how poorly the global low-rank model explains it —
   market-wide anomalies (crashes, regime shifts) show up as error spikes;
2. use the stock-mode factor rows as latent embeddings and list the stocks
   most similar to a query stock by cosine distance.

Run:
    python examples/stock_anomaly_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import DTucker, detect_anomalies, nearest_neighbors, residual_scores
from repro.datasets import stock_like


def inject_market_shock(x: np.ndarray, start: int, stop: int, seed: int) -> None:
    """Overlay an idiosyncratic shock on days ``[start, stop)`` in place.

    During a crash the usual factor structure breaks down: stocks move on
    stock-specific panic rather than the common factors, which is exactly
    the pattern a global low-rank model cannot explain.
    """
    rng = np.random.default_rng(seed)
    n_stocks, n_features, _ = x.shape
    shock = rng.standard_normal((n_stocks, n_features, stop - start)) * 2.0
    x[:, :, start:stop] += shock


def main() -> None:
    n_stocks, n_features, n_days = 150, 30, 500
    x = stock_like(n_stocks, n_features, n_days, n_factors=6, seed=3)
    shock_window = (330, 345)
    inject_market_shock(x, *shock_window, seed=9)
    print(
        f"tensor: {n_stocks} stocks x {n_features} features x {n_days} days "
        f"(shock on days {shock_window[0]}..{shock_window[1] - 1})"
    )

    model = DTucker(ranks=(8, 6, 8), seed=0).fit(x)
    result = model.result_
    print(
        f"fit: error={result.error(x):.4f}, sweeps={model.n_iters_}, "
        f"time={model.timings_.total:.3f}s"
    )

    # --- 1. anomalous days: per-day relative residual energy ---------------
    score = residual_scores(x, result, mode=2)
    report = detect_anomalies(score, z=2.0)
    print(f"\nanomalous days (> mean + 2 std): {report.count}")
    for day in report.top(5):
        flag = "  <-- flagged" if score[day] > report.threshold else ""
        print(f"  day {day:4d}: residual share {score[day]:.4f}{flag}")
    if report.count:
        inside = (report.indices >= shock_window[0]) & (
            report.indices < shock_window[1]
        )
        print(f"fraction of flags inside the shock window: {inside.mean():.2f}")

    # --- 2. similar stocks via factor embeddings ----------------------------
    query = 0
    nearest, cosines = nearest_neighbors(result, mode=0, index=query, k=5)
    print(f"\nstocks most similar to stock {query} (cosine in factor space):")
    for s, c in zip(nearest, cosines):
        print(f"  stock {s:4d}: cosine {c:.4f}")

    # --- 3. what reuse buys: zoom into a lower-rank summary ----------------
    coarse = model.refit(ranks=(4, 3, 4))
    print(
        f"\ncoarse rank-(4,3,4) summary from the same compressed slices: "
        f"error={coarse.error(x):.4f}"
    )


if __name__ == "__main__":
    main()
