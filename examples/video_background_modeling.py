"""Video analysis: background/foreground separation with D-Tucker.

The paper's video datasets (Boats, Walking) motivate Tucker decomposition
for surveillance footage: a low-rank Tucker model captures the static
background plus the dominant motion patterns, and the residual highlights
transient foreground objects.  This example:

1. simulates a Boats-style clip (static scene + drifting objects + noise),
2. fits D-Tucker at a small rank,
3. splits the model into a *background* (the single dominant temporal
   component) and *motion* parts,
4. scores every frame by its residual energy and reports the frames where
   objects dominate the scene.

Run:
    python examples/video_background_modeling.py
"""

from __future__ import annotations

import numpy as np

from repro import DTucker, detect_anomalies, residual_scores
from repro.datasets import boats_like


def inject_intruder(video: np.ndarray, start: int, stop: int) -> None:
    """Add a bright transient object to frames ``[start, stop)`` in place.

    A transient event is exactly what a low-rank temporal factor cannot
    represent — the model residual will spike on these frames.
    """
    h, w, _ = video.shape
    y = np.linspace(0, 1, h)[:, None]
    x = np.linspace(0, 1, w)[None, :]
    for t in range(start, stop):
        cx = 0.2 + 0.6 * (t - start) / max(stop - start - 1, 1)
        blob = 0.9 * np.exp(-((y - 0.5) ** 2 + (x - cx) ** 2) / (2 * 0.05**2))
        video[:, :, t] += blob


def main() -> None:
    video = boats_like(72, 56, 400, n_objects=3, noise=0.02, seed=7)
    intruder_frames = (250, 280)
    inject_intruder(video, *intruder_frames)
    h, w, t = video.shape
    print(f"video: {h}x{w}, {t} frames (intruder on frames "
          f"{intruder_frames[0]}..{intruder_frames[1] - 1})")

    model = DTucker(ranks=(10, 10, 6), seed=0).fit(video)
    result = model.result_
    print(
        f"fit: error={result.error(video):.5f}, "
        f"sweeps={model.n_iters_}, time={model.timings_.total:.3f}s"
    )

    # Background = the component along the dominant temporal direction.
    # For a static background the leading time-factor column is nearly
    # constant; projecting the model onto it gives one "mean scene" image.
    time_factor = result.factors[2]  # (t, 6)
    leading = time_factor[:, 0]
    constancy = leading.std() / np.abs(leading.mean())
    print(f"leading temporal component constancy (std/|mean|): {constancy:.4f}")

    reconstruction = result.reconstruct()
    background = reconstruction @ (np.outer(leading, leading) / (leading @ leading))
    foreground = reconstruction - background

    bg_energy = float(np.linalg.norm(background) ** 2)
    fg_energy = float(np.linalg.norm(foreground) ** 2)
    print(f"background energy share: {bg_energy / (bg_energy + fg_energy):.3f}")

    # Per-frame anomaly score: residual energy the low-rank model cannot
    # explain.  Steady boat traffic is captured by the temporal factors;
    # the transient intruder is not, so its frames spike.
    frame_score = residual_scores(video, result, mode=2, relative=False)
    report = detect_anomalies(frame_score, z=2.0)
    busy = report.indices
    print(f"\nframes flagged as anomalous (> mean + 2 std): {report.count}")
    if busy.size:
        print(f"flagged range: {busy.min()}..{busy.max()}")
        inside = (busy >= intruder_frames[0]) & (busy < intruder_frames[1])
        print(f"fraction of flags inside the intruder window: {inside.mean():.2f}")

    # Compression summary: what a storage system would keep.
    print(
        f"\nstored compressed slices: {model.slice_svd_.nbytes / 1e6:.2f} MB vs "
        f"{video.nbytes / 1e6:.2f} MB raw "
        f"({model.compression_ratio_:.1f}x)"
    )


if __name__ == "__main__":
    main()
