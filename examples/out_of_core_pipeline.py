"""A full memory-frugal pipeline: disk tensor → archive → many answers.

Scenario: a tensor too large to keep resident lives on disk as ``.npy``.
The pipeline

1. compresses it **out of core** (memory-mapped, slice batches — the full
   tensor is never loaded),
2. persists the compressed representation to a small ``.npz`` archive,
3. in a "later session", loads the archive and answers several
   decomposition requests — including automatic rank selection for a
   target error — without touching the original file again.

Run:
    python examples/out_of_core_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    als_sweeps,
    compress_npy,
    estimate_error,
    initialize,
    load_slice_svd,
    save_slice_svd,
    suggest_ranks,
)
from repro.core.result import TuckerResult
from repro.datasets import boats_like


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_ooc_"))
    tensor_path = workdir / "video.npy"
    archive_path = workdir / "video_compressed.npz"

    # --- session 1: acquire data, compress out of core, persist -----------
    video = boats_like(96, 72, 800, seed=11)
    np.save(tensor_path, video)
    dense_mb = tensor_path.stat().st_size / 1e6
    print(f"tensor on disk: {video.shape}, {dense_mb:.1f} MB")
    del video  # from here on, the dense tensor is never resident

    ssvd = compress_npy(tensor_path, rank=12, batch_slices=64, rng=0)
    save_slice_svd(ssvd, archive_path)
    archive_mb = archive_path.stat().st_size / 1e6
    print(
        f"compressed archive: {archive_mb:.1f} MB on disk "
        f"({dense_mb / archive_mb:.1f}x smaller), "
        f"{ssvd.nbytes / 1e6:.1f} MB in memory"
    )

    # --- session 2: answer requests from the archive alone -----------------
    ssvd = load_slice_svd(archive_path)

    print("\nrank selection for target errors:")
    for target in (0.05, 0.01, 0.005):
        ranks = suggest_ranks(ssvd, target, max_rank=12)
        print(
            f"  target {target:0.3f}: ranks {ranks} "
            f"(bound {estimate_error(ssvd, ranks):.4f})"
        )

    print("\ndecomposition requests (compressed-domain ALS):")
    for ranks in ((12, 12, 10), (8, 8, 6), (4, 4, 4)):
        core, factors = initialize(ssvd, ranks)
        out = als_sweeps(ssvd, ranks, factors)
        result = TuckerResult(core=out.core, factors=out.factors)
        print(
            f"  ranks {str(ranks):>12s}: est. error {out.errors[-1]:.5f}, "
            f"{out.n_iters} sweeps, model {result.nbytes / 1e3:.0f} KB"
        )

    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
