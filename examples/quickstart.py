"""Quickstart: decompose a dense tensor with D-Tucker in a few lines.

Runs the three phases on a synthetic low-rank tensor, prints per-phase
timings, reconstruction error, and storage, then answers a second
decomposition request at a smaller rank *without touching the tensor again*
(the compressed slice representation is reused).

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DTucker
from repro.datasets import low_rank_tensor


def main() -> None:
    # A 60 x 50 x 40 dense tensor: Tucker rank (5, 5, 5) signal + 10% noise.
    x = low_rank_tensor((60, 50, 40), (5, 5, 5), noise=0.1, seed=0)
    print(f"input tensor: shape={x.shape}, {x.nbytes / 1e6:.1f} MB dense")

    # Fit with slice rank 8 so we can refit at any rank up to 8 later.
    model = DTucker(ranks=(5, 5, 5), slice_rank=8, seed=0).fit(x)

    print("\n-- phases ------------------------------------------------")
    for phase, seconds in model.timings_:
        print(f"{phase:>14s}: {seconds * 1e3:8.2f} ms")
    print(f"{'total':>14s}: {model.timings_.total * 1e3:8.2f} ms")

    result = model.result_
    print("\n-- result ------------------------------------------------")
    print(f"core shape            : {result.core.shape}")
    print(f"factor shapes         : {[f.shape for f in result.factors]}")
    print(f"reconstruction error  : {result.error(x):.5f}")
    print(f"ALS sweeps            : {model.n_iters_} (converged={model.converged_})")
    print(f"compressed slices     : {model.slice_svd_.nbytes / 1e6:.2f} MB "
          f"({model.compression_ratio_:.1f}x smaller than the tensor)")

    # Answer a new request from the compressed representation alone.
    small = model.refit(ranks=(3, 3, 3))
    print("\n-- refit at rank (3, 3, 3), no pass over the tensor --------")
    print(f"reconstruction error  : {small.error(x):.5f}")

    # The factors are orthonormal; the core carries the energy.
    q = result.factors[0]
    assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-8)
    print("\nfactor orthonormality verified")


if __name__ == "__main__":
    main()
